package colbatch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// randValue draws a value of the given kind, with ω and (for numeric
// columns) cross-kind mixing thrown in to exercise demotion.
func randValue(r *rand.Rand, k value.Kind) value.Value {
	if r.Intn(6) == 0 {
		return value.Null
	}
	if k.Numeric() && r.Intn(4) == 0 {
		// Mixed numeric column: relation.Append permits this.
		if k == value.KindInt {
			k = value.KindFloat
		} else {
			k = value.KindInt
		}
	}
	switch k {
	case value.KindInt:
		return value.NewInt(r.Int63n(1000) - 500)
	case value.KindFloat:
		switch r.Intn(8) {
		case 0:
			return value.NewFloat(math.NaN())
		case 1:
			return value.NewFloat(math.Inf(1))
		case 2:
			return value.NewFloat(math.Copysign(0, -1))
		}
		return value.NewFloat((r.Float64() - 0.5) * 100)
	case value.KindBool:
		return value.NewBool(r.Intn(2) == 0)
	case value.KindString:
		bs := make([]byte, r.Intn(6))
		for i := range bs {
			bs[i] = byte(r.Intn(4)) // includes 0x00 to exercise escaping
		}
		return value.NewString(string(bs))
	case value.KindInterval:
		ts := r.Int63n(100)
		return value.NewInterval(interval.Interval{Ts: ts, Te: ts + 1 + r.Int63n(20)})
	}
	return value.Null
}

func randTuples(r *rand.Rand, s schema.Schema, n int) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		vals := make([]value.Value, s.Len())
		for c := range vals {
			vals[c] = randValue(r, s.Attrs[c].Type)
		}
		ts := r.Int63n(1000)
		rows[i] = tuple.Tuple{Vals: vals, T: interval.Interval{Ts: ts, Te: ts + 1 + r.Int63n(50)}}
	}
	return rows
}

var testSchema = schema.MustNew(
	schema.Attr{Name: "a", Type: value.KindInt},
	schema.Attr{Name: "b", Type: value.KindFloat},
	schema.Attr{Name: "c", Type: value.KindString},
	schema.Attr{Name: "d", Type: value.KindBool},
	schema.Attr{Name: "e", Type: value.KindInterval},
	schema.Attr{Name: "u", Type: value.KindNull},
)

// TestKeyIdentity is the load-bearing test of the package: batch key
// encoders must be byte-identical to the row encoders, for every row,
// including after demotion and through views.
func TestKeyIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows := randTuples(r, testSchema, 64)
		b := FromTuples(nil, testSchema, rows)
		if b.Len() != len(rows) {
			t.Fatalf("Len = %d, want %d", b.Len(), len(rows))
		}
		for i := range rows {
			want := rows[i].AppendKey(nil)
			got := b.AppendRowKey(nil, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("row %d: AppendRowKey mismatch\n got %x\nwant %x\nrow %v", i, got, want, rows[i])
			}
			wantVals := rows[i].AppendKeyVals(nil)
			gotVals := b.AppendValsKey(nil, i)
			if !bytes.Equal(gotVals, wantVals) {
				t.Fatalf("row %d: AppendValsKey mismatch", i)
			}
			for c := range b.Cols {
				wantCol := rows[i].Vals[c].AppendKey(nil)
				gotCol := b.Cols[c].AppendKey(nil, i)
				if !bytes.Equal(gotCol, wantCol) {
					t.Fatalf("row %d col %d: Vec.AppendKey mismatch (%v)", i, c, rows[i].Vals[c])
				}
			}
		}
		// Views must encode identically too.
		lo, hi := 16, 48
		var view Batch
		b.SliceInto(&view, lo, hi)
		for i := 0; i < hi-lo; i++ {
			want := rows[lo+i].AppendKey(nil)
			got := view.AppendRowKey(nil, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("view row %d: key mismatch", i)
			}
		}
	}
}

// TestMaterializeRoundTrip checks tuples -> batch -> tuples is exact
// (same kinds, not merely key-equal: a float 2.0 must stay a float).
func TestMaterializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rows := randTuples(r, testSchema, 200)
	b := FromTuples(nil, testSchema, rows)
	got := b.Materialize(nil)
	if len(got) != len(rows) {
		t.Fatalf("materialized %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].T != rows[i].T {
			t.Fatalf("row %d: T = %v, want %v", i, got[i].T, rows[i].T)
		}
		for c := range rows[i].Vals {
			w, g := rows[i].Vals[c], got[i].Vals[c]
			if g.Kind() != w.Kind() || g.Compare(w) != 0 || g.String() != w.String() {
				t.Fatalf("row %d col %d: %v != %v", i, c, g, w)
			}
		}
	}
}

func TestSelectionAndRowAt(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rows := randTuples(r, testSchema, 50)
	b := FromTuples(nil, testSchema, rows)
	b.Sel = []int32{3, 7, 49}
	if b.NumRows() != 3 || b.Len() != 50 {
		t.Fatalf("NumRows/Len = %d/%d", b.NumRows(), b.Len())
	}
	got := b.Materialize(nil)
	for k, phys := range []int{3, 7, 49} {
		if b.RowAt(k) != phys {
			t.Fatalf("RowAt(%d) = %d", k, b.RowAt(k))
		}
		if !got[k].Equal(rows[phys]) {
			t.Fatalf("selected row %d != source row %d", k, phys)
		}
	}
}

// TestResetReuse checks that a reused batch (including one that demoted a
// column, or had null rows) observes no state from its previous life.
func TestResetReuse(t *testing.T) {
	intSchema := schema.MustNew(schema.Attr{Name: "x", Type: value.KindInt})
	b := New(intSchema)
	b.AppendTuple(tuple.New(interval.New(0, 1), value.NewFloat(1.5))) // demotes
	b.AppendTuple(tuple.New(interval.New(0, 1), value.Null))          // sets a bit
	if _, ok := b.Cols[0].IntsRaw(); ok {
		t.Fatal("column should have demoted")
	}
	b.Reset()
	b.AppendTuple(tuple.New(interval.New(2, 3), value.NewInt(7)))
	if ints, ok := b.Cols[0].IntsRaw(); !ok || ints[0] != 7 {
		t.Fatalf("after reset: ints=%v ok=%v", b.Cols[0].Ints, ok)
	}
	if b.Cols[0].IsNull(0) {
		t.Fatal("stale null bit survived Reset")
	}
	if b.Len() != 1 || b.NumRows() != 1 {
		t.Fatalf("Len/NumRows = %d/%d", b.Len(), b.NumRows())
	}
}

func TestAppendFromAcrossLayouts(t *testing.T) {
	intSchema := schema.MustNew(schema.Attr{Name: "x", Type: value.KindInt})
	src := New(intSchema)
	src.AppendTuple(tuple.New(interval.New(0, 5), value.NewInt(1)))
	src.AppendTuple(tuple.New(interval.New(0, 5), value.NewFloat(2.5))) // demotes src
	src.AppendTuple(tuple.New(interval.New(0, 5), value.Null))

	dst := New(intSchema)
	for i := 0; i < src.Len(); i++ {
		dst.AppendFrom(src, i, src.TS[i], src.TE[i])
	}
	got := dst.Materialize(nil)
	want := src.Materialize(nil)
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].Vals[0].Kind() != want[i].Vals[0].Kind() {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}
