// Package colbatch implements the columnar batch representation of the
// vectorized executor: one typed flat slice per attribute column, a
// validity bitmap marking ω (NULL) positions, dedicated T-start/T-end
// int64 columns for the valid-time interval, and an optional selection
// vector of surviving row indices.
//
// A Batch is the unit of data flow on the columnar side of the exec
// pipeline (exec.ColIterator). Operators that only qualify rows — Filter,
// Limit, set-op dedup — write the selection vector and never copy column
// data; Project shuffles column headers; only group-producing operators
// (adjust, exchange routing) append into fresh vectors.
//
// # Physical layout
//
// Each Vec carries the declared schema kind plus a physical storage tag.
// A column whose values all match the declared kind stores them in one
// flat typed slice (Ints, Floats, Strs, Bools, or IvTs/IvTe for interval
// columns); ω positions are marked in the validity bitmap and hold the
// zero element of the typed slice. The engine's relations permit two
// forms of heterogeneity — int/float mixing within a numeric column and
// untyped (KindNull-declared) columns — and a Vec that observes a value
// of unexpected kind demotes itself to boxed storage (Any), preserving
// exact row semantics at the cost of the fast path. Demotion is per
// column and per batch; homogeneous data never pays for it.
//
// # Selection vectors
//
// Sel, when non-nil, lists the physical row indices (strictly ascending)
// that are logically present; when nil, all Len() rows are present.
// NumRows is the logical row count, RowAt(i) maps logical position to
// physical row. Column storage and the TS/TE arrays always have physical
// length Len(), regardless of selection.
//
// # Key encoding
//
// AppendKey / AppendValsKey / AppendRowKey produce byte keys that are
// byte-identical to value.AppendKey / tuple.AppendKeyVals /
// tuple.AppendKey on the corresponding row values. Identity holds by
// construction: the encoders build a value.Value (a zero-allocation
// struct) for each cell and call its AppendKey. Sort, hash and set-op
// code can therefore mix keys from row and columnar sources freely.
package colbatch

import (
	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// phys tags the storage actually used by a Vec, independent of the
// declared kind.
type phys uint8

const (
	physInt phys = iota
	physFloat
	physStr
	physBool
	physInterval
	physAny // boxed fallback for heterogeneous columns
)

func physFor(k value.Kind) phys {
	switch k {
	case value.KindInt:
		return physInt
	case value.KindFloat:
		return physFloat
	case value.KindString:
		return physStr
	case value.KindBool:
		return physBool
	case value.KindInterval:
		return physInterval
	}
	return physAny // KindNull (untyped) columns are always boxed
}

// Vec is a single column: a flat typed slice plus a validity bitmap.
// The zero Vec is not usable; build vectors through Batch methods or
// IntVec.
type Vec struct {
	Kind value.Kind // declared schema kind
	ph   phys

	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	IvTs   []int64 // interval starts
	IvTe   []int64 // interval ends
	Any    []value.Value

	// nulls is a packed bitmap; bit (nullOff+i) set means row i is ω.
	// Words are appended zeroed on demand, so a short bitmap means
	// "all further rows valid". Views share the parent's words via
	// nullOff.
	nulls   []uint64
	nullOff int
}

// IntVec wraps an existing int64 slice as a null-free int column; used to
// project the TS/TE time columns as ordinary attributes without copying.
func IntVec(xs []int64) Vec {
	return Vec{Kind: value.KindInt, ph: physInt, Ints: xs}
}

func (v *Vec) init(k value.Kind) {
	*v = Vec{Kind: k, ph: physFor(k)}
}

// IsNull reports whether row i holds ω.
func (v *Vec) IsNull(i int) bool {
	idx := v.nullOff + i
	w := idx >> 6
	if w >= len(v.nulls) {
		return false
	}
	return v.nulls[w]&(1<<(idx&63)) != 0
}

// setNull marks row i (which must be the row just appended, with
// nullOff == 0) as ω, growing the bitmap with zeroed words as needed.
func (v *Vec) setNull(i int) {
	w := i >> 6
	for len(v.nulls) <= w {
		v.nulls = append(v.nulls, 0)
	}
	v.nulls[w] |= 1 << (i & 63)
}

// IntsRaw returns the flat int64 storage, or nil,false when the column is
// not in int layout (demoted or non-int). Callers must pair reads with
// IsNull checks.
func (v *Vec) IntsRaw() ([]int64, bool) {
	if v.ph != physInt {
		return nil, false
	}
	return v.Ints, true
}

// FloatsRaw is IntsRaw for float64 storage.
func (v *Vec) FloatsRaw() ([]float64, bool) {
	if v.ph != physFloat {
		return nil, false
	}
	return v.Floats, true
}

// Len returns the physical row count of the column.
func (v *Vec) Len() int {
	switch v.ph {
	case physInt:
		return len(v.Ints)
	case physFloat:
		return len(v.Floats)
	case physStr:
		return len(v.Strs)
	case physBool:
		return len(v.Bools)
	case physInterval:
		return len(v.IvTs)
	}
	return len(v.Any)
}

// Value boxes row i back into a value.Value.
func (v *Vec) Value(i int) value.Value {
	if v.IsNull(i) {
		return value.Null
	}
	switch v.ph {
	case physInt:
		return value.NewInt(v.Ints[i])
	case physFloat:
		return value.NewFloat(v.Floats[i])
	case physStr:
		return value.NewString(v.Strs[i])
	case physBool:
		return value.NewBool(v.Bools[i])
	case physInterval:
		return value.NewInterval(interval.Interval{Ts: v.IvTs[i], Te: v.IvTe[i]})
	}
	return v.Any[i]
}

// Int returns row i's int payload with the same panic semantics as
// value.Value.Int (ω or a non-int value panics).
func (v *Vec) Int(i int) int64 {
	if v.ph == physInt && !v.IsNull(i) {
		return v.Ints[i]
	}
	return v.Value(i).Int()
}

// AppendKey appends the order-preserving key encoding of row i to dst,
// byte-identical to Value(i).AppendKey.
func (v *Vec) AppendKey(dst []byte, i int) []byte {
	if v.IsNull(i) {
		return value.Null.AppendKey(dst)
	}
	switch v.ph {
	case physInt:
		return value.NewInt(v.Ints[i]).AppendKey(dst)
	case physFloat:
		return value.NewFloat(v.Floats[i]).AppendKey(dst)
	case physStr:
		return value.NewString(v.Strs[i]).AppendKey(dst)
	case physBool:
		return value.NewBool(v.Bools[i]).AppendKey(dst)
	case physInterval:
		iv := interval.Interval{Ts: v.IvTs[i], Te: v.IvTe[i]}
		return value.NewInterval(iv).AppendKey(dst)
	}
	return v.Any[i].AppendKey(dst)
}

// appendValue appends one value, demoting the column to boxed storage on
// a kind mismatch (numeric mixing, values in untyped columns).
func (v *Vec) appendValue(x value.Value) {
	if x.IsNull() {
		v.appendNull()
		return
	}
	switch v.ph {
	case physInt:
		if x.Kind() == value.KindInt {
			v.Ints = append(v.Ints, x.Int())
			return
		}
	case physFloat:
		if x.Kind() == value.KindFloat {
			v.Floats = append(v.Floats, x.Float())
			return
		}
	case physStr:
		if x.Kind() == value.KindString {
			v.Strs = append(v.Strs, x.Str())
			return
		}
	case physBool:
		if x.Kind() == value.KindBool {
			v.Bools = append(v.Bools, x.Bool())
			return
		}
	case physInterval:
		if x.Kind() == value.KindInterval {
			iv := x.Interval()
			v.IvTs = append(v.IvTs, iv.Ts)
			v.IvTe = append(v.IvTe, iv.Te)
			return
		}
	default:
		v.Any = append(v.Any, x)
		return
	}
	v.demote()
	v.Any = append(v.Any, x)
}

// appendNull appends an ω row: the typed slice grows by one zero element
// (so physical offsets stay aligned) and the bitmap bit is set.
func (v *Vec) appendNull() {
	var i int
	switch v.ph {
	case physInt:
		i = len(v.Ints)
		v.Ints = append(v.Ints, 0)
	case physFloat:
		i = len(v.Floats)
		v.Floats = append(v.Floats, 0)
	case physStr:
		i = len(v.Strs)
		v.Strs = append(v.Strs, "")
	case physBool:
		i = len(v.Bools)
		v.Bools = append(v.Bools, false)
	case physInterval:
		i = len(v.IvTs)
		v.IvTs = append(v.IvTs, 0)
		v.IvTe = append(v.IvTe, 0)
	default:
		i = len(v.Any)
		v.Any = append(v.Any, value.Null)
	}
	v.setNull(i)
}

// demote boxes the existing typed rows into Any and switches the column
// to boxed storage. The validity bitmap is preserved: Value already maps
// ω rows to value.Null regardless of storage.
func (v *Vec) demote() {
	n := v.Len()
	any := make([]value.Value, n)
	for i := 0; i < n; i++ {
		any[i] = v.Value(i)
	}
	v.Ints, v.Floats, v.Strs, v.Bools, v.IvTs, v.IvTe = nil, nil, nil, nil, nil, nil
	v.ph = physAny
	v.Any = any
}

// reset truncates the column to zero rows, keeping storage capacity. The
// physical layout snaps back to the declared kind, so a demoted column
// gets a fresh chance at the typed fast path.
func (v *Vec) reset() {
	v.ph = physFor(v.Kind)
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Bools = v.Bools[:0]
	v.IvTs = v.IvTs[:0]
	v.IvTe = v.IvTe[:0]
	v.Any = v.Any[:0]
	// Bitmap words are re-appended (zeroed) on demand; [:0] is enough.
	v.nulls = v.nulls[:0]
	v.nullOff = 0
}

// slice returns a view of rows [lo, hi). Storage is shared with the
// parent (including bitmap words, via nullOff); views must not be
// appended to.
func (v *Vec) slice(lo, hi int) Vec {
	out := Vec{Kind: v.Kind, ph: v.ph, nulls: v.nulls, nullOff: v.nullOff + lo}
	switch v.ph {
	case physInt:
		out.Ints = v.Ints[lo:hi:hi]
	case physFloat:
		out.Floats = v.Floats[lo:hi:hi]
	case physStr:
		out.Strs = v.Strs[lo:hi:hi]
	case physBool:
		out.Bools = v.Bools[lo:hi:hi]
	case physInterval:
		out.IvTs = v.IvTs[lo:hi:hi]
		out.IvTe = v.IvTe[lo:hi:hi]
	default:
		out.Any = v.Any[lo:hi:hi]
	}
	return out
}

// Batch is a columnar batch: one Vec per schema attribute, the two
// valid-time columns, and an optional selection vector.
type Batch struct {
	Schema schema.Schema
	Cols   []Vec
	TS     []int64 // valid-time starts, one per physical row
	TE     []int64 // valid-time ends, one per physical row

	// Sel, when non-nil, holds the logically present physical row
	// indices in strictly ascending order. nil means all rows.
	Sel []int32

	n int // physical row count
}

// New returns an empty appendable batch over s.
func New(s schema.Schema) *Batch {
	b := &Batch{}
	b.ResetSchema(s)
	return b
}

// ResetSchema truncates the batch to zero rows and (re)binds it to s,
// reusing column storage when the arity matches.
func (b *Batch) ResetSchema(s schema.Schema) {
	b.Schema = s
	if len(b.Cols) != s.Len() {
		b.Cols = make([]Vec, s.Len())
		for i := range b.Cols {
			b.Cols[i].init(s.Attrs[i].Type)
		}
	} else {
		for i := range b.Cols {
			b.Cols[i].Kind = s.Attrs[i].Type
			b.Cols[i].reset()
		}
	}
	b.TS = b.TS[:0]
	b.TE = b.TE[:0]
	b.Sel = nil
	b.n = 0
}

// Reset truncates the batch to zero rows, keeping schema and capacity.
func (b *Batch) Reset() {
	for i := range b.Cols {
		b.Cols[i].reset()
	}
	b.TS = b.TS[:0]
	b.TE = b.TE[:0]
	b.Sel = nil
	b.n = 0
}

// Len returns the physical row count.
func (b *Batch) Len() int { return b.n }

// SetLen declares the physical row count; used when column headers are
// assembled by reference (projection) rather than appended.
func (b *Batch) SetLen(n int) { b.n = n }

// NumRows returns the logical row count (selection-aware).
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// RowAt maps logical position i to a physical row index.
func (b *Batch) RowAt(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Interval returns the valid time of physical row i.
func (b *Batch) Interval(i int) interval.Interval {
	return interval.Interval{Ts: b.TS[i], Te: b.TE[i]}
}

// AppendTuple appends a row from its row representation.
func (b *Batch) AppendTuple(t tuple.Tuple) {
	for c := range b.Cols {
		b.Cols[c].appendValue(t.Vals[c])
	}
	b.TS = append(b.TS, t.T.Ts)
	b.TE = append(b.TE, t.T.Te)
	b.n++
}

// AppendFrom appends physical row `row` of src (same schema) with valid
// time [ts, te); the group-producing operators (adjust, exchange) emit
// rows through this.
func (b *Batch) AppendFrom(src *Batch, row int, ts, te int64) {
	for c := range b.Cols {
		sv := &src.Cols[c]
		dv := &b.Cols[c]
		if sv.IsNull(row) {
			dv.appendNull()
			continue
		}
		if dv.ph == sv.ph {
			switch sv.ph {
			case physInt:
				dv.Ints = append(dv.Ints, sv.Ints[row])
				continue
			case physFloat:
				dv.Floats = append(dv.Floats, sv.Floats[row])
				continue
			case physStr:
				dv.Strs = append(dv.Strs, sv.Strs[row])
				continue
			case physBool:
				dv.Bools = append(dv.Bools, sv.Bools[row])
				continue
			case physInterval:
				dv.IvTs = append(dv.IvTs, sv.IvTs[row])
				dv.IvTe = append(dv.IvTe, sv.IvTe[row])
				continue
			}
		}
		dv.appendValue(sv.Value(row))
	}
	b.TS = append(b.TS, ts)
	b.TE = append(b.TE, te)
	b.n++
}

// AppendBatch appends all logically present rows of src (same schema).
func (b *Batch) AppendBatch(src *Batch) {
	for i, nsel := 0, src.NumRows(); i < nsel; i++ {
		row := src.RowAt(i)
		b.AppendFrom(src, row, src.TS[row], src.TE[row])
	}
}

// FromTuples converts rows into columnar form, reusing dst when non-nil.
func FromTuples(dst *Batch, s schema.Schema, rows []tuple.Tuple) *Batch {
	if dst == nil {
		dst = New(s)
	} else {
		dst.ResetSchema(s)
	}
	for i := range rows {
		dst.AppendTuple(rows[i])
	}
	return dst
}

// SliceInto writes a view of physical rows [lo, hi) into dst. The source
// must have no selection vector; storage is shared, so views are
// read-only except for dst.Sel.
func (b *Batch) SliceInto(dst *Batch, lo, hi int) {
	if b.Sel != nil {
		panic("colbatch: SliceInto over a selection")
	}
	dst.Schema = b.Schema
	dst.Cols = dst.Cols[:0]
	for c := range b.Cols {
		dst.Cols = append(dst.Cols, b.Cols[c].slice(lo, hi))
	}
	dst.TS = b.TS[lo:hi:hi]
	dst.TE = b.TE[lo:hi:hi]
	dst.Sel = nil
	dst.n = hi - lo
}

// Materialize appends the logically present rows to dst as row tuples.
// Each call allocates one fresh value slab shared by the returned
// tuples' Vals slices, so the tuples satisfy the row-side immutability
// contract (safe to retain) while costing one allocation per batch.
func (b *Batch) Materialize(dst []tuple.Tuple) []tuple.Tuple {
	nsel := b.NumRows()
	if nsel == 0 {
		return dst
	}
	w := len(b.Cols)
	var flat []value.Value
	if w > 0 {
		flat = make([]value.Value, nsel*w)
	}
	for k := 0; k < nsel; k++ {
		row := b.RowAt(k)
		var vals []value.Value
		if w > 0 {
			vals = flat[k*w : (k+1)*w : (k+1)*w]
			for c := range b.Cols {
				vals[c] = b.Cols[c].Value(row)
			}
		}
		dst = append(dst, tuple.Tuple{Vals: vals, T: b.Interval(row)})
	}
	return dst
}

// AppendValsKey appends the order-preserving key of physical row `row`'s
// attribute values, byte-identical to tuple.AppendKeyVals on the
// materialized row.
func (b *Batch) AppendValsKey(dst []byte, row int) []byte {
	for c := range b.Cols {
		dst = b.Cols[c].AppendKey(dst, row)
	}
	return dst
}

// AppendRowKey appends the full row key (values, then valid time),
// byte-identical to tuple.AppendKey on the materialized row.
func (b *Batch) AppendRowKey(dst []byte, row int) []byte {
	return value.AppendIntervalKey(b.AppendValsKey(dst, row), b.Interval(row))
}
