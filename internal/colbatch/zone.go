package colbatch

import "talign/internal/value"

// ZoneCol summarizes one attribute column of a segment: the minimum and
// maximum non-ω values under value.Compare, or ω for both when every row
// of the column is ω. Nulls reports how many rows are ω.
type ZoneCol struct {
	Min   value.Value
	Max   value.Value
	Nulls int
}

// AllNull reports whether the column holds no non-ω value, in which case
// any column-vs-constant comparison predicate eliminates the segment.
func (z ZoneCol) AllNull() bool { return z.Min.IsNull() }

// Zone is a segment's zone map: row count, the valid-time bounding box
// (min/max of TS and TE over all rows), and per-column min/max. The
// optimizer prunes a segment when a pushed-down predicate's admissible
// range is disjoint from the zone; internal/stats aggregates zones into
// table statistics so freshly loaded tables cost realistically before
// their first ANALYZE.
type Zone struct {
	Rows  int
	MinTS int64
	MaxTS int64
	MinTE int64
	MaxTE int64
	Cols  []ZoneCol
}

// ZoneOf computes the zone map of a batch with no selection vector.
// A zero-row batch yields a zone with Rows == 0 and inverted time bounds
// unset to zero; callers partitioning data never emit empty segments.
func ZoneOf(b *Batch) Zone {
	z := Zone{Rows: b.Len(), Cols: make([]ZoneCol, len(b.Cols))}
	if b.Sel != nil {
		panic("colbatch: ZoneOf over a selection")
	}
	for i := 0; i < b.Len(); i++ {
		ts, te := b.TS[i], b.TE[i]
		if i == 0 {
			z.MinTS, z.MaxTS, z.MinTE, z.MaxTE = ts, ts, te, te
		} else {
			if ts < z.MinTS {
				z.MinTS = ts
			}
			if ts > z.MaxTS {
				z.MaxTS = ts
			}
			if te < z.MinTE {
				z.MinTE = te
			}
			if te > z.MaxTE {
				z.MaxTE = te
			}
		}
	}
	for c := range b.Cols {
		v := &b.Cols[c]
		zc := &z.Cols[c]
		zc.Min, zc.Max = value.Null, value.Null
		for i := 0; i < b.Len(); i++ {
			x := v.Value(i)
			if x.IsNull() {
				zc.Nulls++
				continue
			}
			if zc.Min.IsNull() || x.Compare(zc.Min) < 0 {
				zc.Min = x
			}
			if zc.Max.IsNull() || x.Compare(zc.Max) > 0 {
				zc.Max = x
			}
		}
	}
	return z
}
