package colbatch

import (
	"talign/internal/schema"
	"talign/internal/value"
)

// This file exports raw-parts constructors for code that assembles
// batches from storage rather than by appending tuples: the on-disk
// segment decoder aliases memory-mapped column regions directly into Vec
// storage (zero-copy for the int64/float64/TS/TE fast paths). The
// resulting batches are read-only by contract, like SliceInto views.

// VecFromInts wraps int64 storage plus an optional packed validity
// bitmap (bit i set means row i is ω) as an int column.
func VecFromInts(xs []int64, nulls []uint64) Vec {
	return Vec{Kind: value.KindInt, ph: physInt, Ints: xs, nulls: nulls}
}

// VecFromFloats is VecFromInts for float64 storage.
func VecFromFloats(xs []float64, nulls []uint64) Vec {
	return Vec{Kind: value.KindFloat, ph: physFloat, Floats: xs, nulls: nulls}
}

// VecFromStrs is VecFromInts for string storage.
func VecFromStrs(xs []string, nulls []uint64) Vec {
	return Vec{Kind: value.KindString, ph: physStr, Strs: xs, nulls: nulls}
}

// VecFromBools is VecFromInts for bool storage.
func VecFromBools(xs []bool, nulls []uint64) Vec {
	return Vec{Kind: value.KindBool, ph: physBool, Bools: xs, nulls: nulls}
}

// VecFromIntervals wraps parallel start/end storage plus an optional
// validity bitmap as an interval column. len(ts) must equal len(te).
func VecFromIntervals(ts, te []int64, nulls []uint64) Vec {
	if len(ts) != len(te) {
		panic("colbatch: VecFromIntervals length mismatch")
	}
	return Vec{Kind: value.KindInterval, ph: physInterval, IvTs: ts, IvTe: te, nulls: nulls}
}

// VecFromAny wraps boxed storage as a column declared as kind k: the
// storage form of heterogeneous (demoted) and untyped columns. ω rows
// are represented by value.Null elements directly; no bitmap is needed.
func VecFromAny(k value.Kind, xs []value.Value) Vec {
	v := Vec{Kind: k, ph: physAny, Any: xs}
	for i, x := range xs {
		if x.IsNull() {
			v.setNull(i)
		}
	}
	return v
}

// StrsRaw returns the flat string storage, or nil,false when the column
// is not in string layout.
func (v *Vec) StrsRaw() ([]string, bool) {
	if v.ph != physStr {
		return nil, false
	}
	return v.Strs, true
}

// BoolsRaw returns the flat bool storage, or nil,false when the column
// is not in bool layout.
func (v *Vec) BoolsRaw() ([]bool, bool) {
	if v.ph != physBool {
		return nil, false
	}
	return v.Bools, true
}

// IntervalsRaw returns the parallel start/end storage, or nils,false
// when the column is not in interval layout.
func (v *Vec) IntervalsRaw() ([]int64, []int64, bool) {
	if v.ph != physInterval {
		return nil, nil, false
	}
	return v.IvTs, v.IvTe, true
}

// AnyRaw returns the boxed storage, or nil,false when the column is in a
// typed layout. Demoted and untyped columns report true.
func (v *Vec) AnyRaw() ([]value.Value, bool) {
	if v.ph != physAny {
		return nil, false
	}
	return v.Any, true
}

// NullBitmap returns the column's packed validity bitmap in canonical
// form (nullOff 0), or nil when no row is ω. The result is freshly
// allocated only when the vector is an offset view.
func (v *Vec) NullBitmap() []uint64 {
	if len(v.nulls) == 0 {
		return nil
	}
	if v.nullOff == 0 {
		any := false
		for _, w := range v.nulls {
			if w != 0 {
				any = true
				break
			}
		}
		if !any {
			return nil
		}
		return v.nulls
	}
	n := v.Len()
	var out []uint64
	for i := 0; i < n; i++ {
		if v.IsNull(i) {
			for len(out) <= i>>6 {
				out = append(out, 0)
			}
			out[i>>6] |= 1 << (i & 63)
		}
	}
	return out
}

// NewFromParts assembles a batch from pre-built columns and valid-time
// arrays. Every column must have physical length len(ts) == len(te).
// The batch shares the given storage and must be treated as read-only.
func NewFromParts(s schema.Schema, cols []Vec, ts, te []int64) *Batch {
	if len(cols) != s.Len() {
		panic("colbatch: NewFromParts column count does not match schema")
	}
	if len(ts) != len(te) {
		panic("colbatch: NewFromParts TS/TE length mismatch")
	}
	for i := range cols {
		if cols[i].Len() != len(ts) {
			panic("colbatch: NewFromParts column length mismatch")
		}
	}
	return &Batch{Schema: s, Cols: cols, TS: ts, TE: te, n: len(ts)}
}
