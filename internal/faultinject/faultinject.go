// Package faultinject is the chaos-testing hook layer: named sites in
// the executor, the server and the wire client call Hit, and tests arm
// faults (a panic, an injected error, a delay) at those sites to prove
// the resilience machinery — panic isolation, structured errors,
// goroutine teardown, gate release — under adversity rather than luck.
//
// Production cost is one atomic load per site visit: until Enable is
// called, Hit returns immediately. Faults are armed with a countdown
// (fire on the k-th visit, optionally repeatedly), which keeps chaos
// runs reproducible from a seed without any randomness in this package.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates what an armed fault does when it fires.
type Kind int

// The fault kinds.
const (
	// KindPanic panics at the site (the resilience layer must convert it
	// into a structured internal error, not a process crash).
	KindPanic Kind = iota
	// KindError makes Hit return an injected error.
	KindError
	// KindDelay makes Hit sleep before returning nil (stressing
	// deadlines and drain paths without failing the operation).
	KindDelay
)

// String renders the kind for test labels.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one armed behavior at a site.
type Fault struct {
	// Kind selects the behavior when the fault fires.
	Kind Kind
	// After skips the first After visits to the site, so faults can be
	// placed mid-stream (0 fires on the first visit).
	After int
	// Repeat keeps the fault armed after it fires; otherwise it fires
	// exactly once.
	Repeat bool
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// Err overrides the injected error for KindError (a generic
	// "faultinject: injected error at <site>" otherwise).
	Err error
}

// armed is a Fault plus its visit counter.
type armed struct {
	f      Fault
	visits int
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	sites   map[string]*armed
	fired   atomic.Uint64
)

// Enabled reports whether any faults are armed (the fast-path check).
func Enabled() bool { return enabled.Load() }

// Fired reports how many faults have fired since the last Reset.
func Fired() uint64 { return fired.Load() }

// Arm installs a fault at a named site (replacing any previous one) and
// enables the hook layer.
func Arm(site string, f Fault) {
	mu.Lock()
	if sites == nil {
		sites = make(map[string]*armed)
	}
	sites[site] = &armed{f: f}
	mu.Unlock()
	enabled.Store(true)
}

// Disarm removes the fault at a site, if any.
func Disarm(site string) {
	mu.Lock()
	delete(sites, site)
	empty := len(sites) == 0
	mu.Unlock()
	if empty {
		enabled.Store(false)
	}
}

// Reset disarms every site and zeroes the fired counter.
func Reset() {
	mu.Lock()
	sites = nil
	mu.Unlock()
	enabled.Store(false)
	fired.Store(0)
}

// Hit visits a named site: a no-op (after one atomic load) unless a
// fault is armed there and its countdown has elapsed. KindError returns
// the injected error, KindDelay sleeps and returns nil, KindPanic
// panics with a *Panic value carrying the site name.
func Hit(site string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	a, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.visits++
	if a.visits <= a.f.After {
		mu.Unlock()
		return nil
	}
	f := a.f
	if !f.Repeat {
		delete(sites, site)
	}
	mu.Unlock()
	fired.Add(1)
	switch f.Kind {
	case KindPanic:
		panic(&Panic{Site: site})
	case KindDelay:
		time.Sleep(f.Delay)
		return nil
	default:
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("faultinject: injected error at %s", site)
	}
}

// Panic is the value an injected panic throws; recovery layers see it
// like any other panic value, and chaos tests can recognize their own
// injections in resulting error messages by the site name.
type Panic struct {
	// Site names where the panic was injected.
	Site string
}

// String renders the injected panic value.
func (p *Panic) String() string { return "faultinject: injected panic at " + p.Site }
