package randrel

import (
	"math/rand"
	"testing"

	"talign/internal/schema"
	"talign/internal/value"
)

func TestGeneratorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig(
		schema.Attr{Name: "x", Type: value.KindString},
		schema.Attr{Name: "v", Type: value.KindInt},
	)
	for round := 0; round < 200; round++ {
		r := Generate(rng, cfg)
		if r.Len() > cfg.MaxTuples {
			t.Fatalf("too many tuples: %d", r.Len())
		}
		if err := r.DuplicateFree(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, tp := range r.Tuples {
			if tp.T.Ts < 0 || tp.T.Te > cfg.TimeMax {
				t.Fatalf("interval %v outside [0, %d)", tp.T, cfg.TimeMax)
			}
			if !tp.T.Valid() {
				t.Fatalf("invalid interval %v", tp.T)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultConfig(schema.Attr{Name: "x", Type: value.KindString})
	a := Generate(rand.New(rand.NewSource(9)), cfg)
	b := Generate(rand.New(rand.NewSource(9)), cfg)
	if a.Len() != b.Len() {
		t.Fatal("same seed must give same relation")
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			t.Fatal("same seed must give same tuples")
		}
	}
}

func TestPair(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig(schema.Attr{Name: "x", Type: value.KindInt})
	a, b := Pair(rng, cfg, cfg)
	if a == nil || b == nil {
		t.Fatal("pair must generate both relations")
	}
}
