// Package randrel generates random duplicate-free temporal relations for
// property-based tests: small value alphabets and a small time domain make
// interesting overlap patterns likely, while the duplicate-free invariant
// of Sec. 3.1 is maintained by construction.
package randrel

import (
	"math/rand"

	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Config controls generation.
type Config struct {
	// MaxTuples bounds the relation size (at least 0, may produce fewer).
	MaxTuples int
	// TimeMax bounds the time domain [0, TimeMax).
	TimeMax int64
	// Attrs describes the schema; only int and string kinds are generated.
	Attrs []schema.Attr
	// Alphabet bounds the distinct values per attribute.
	Alphabet int
}

// DefaultConfig is a small, overlap-heavy configuration.
func DefaultConfig(attrs ...schema.Attr) Config {
	return Config{MaxTuples: 8, TimeMax: 24, Attrs: attrs, Alphabet: 3}
}

// Generate produces a random duplicate-free relation: intervals of tuples
// with identical values never overlap.
func Generate(rng *rand.Rand, cfg Config) *relation.Relation {
	rel := relation.New(schema.Schema{Attrs: cfg.Attrs})
	n := rng.Intn(cfg.MaxTuples + 1)
	// Track used intervals per value combination to keep the relation
	// duplicate free.
	used := map[string][]interval.Interval{}
	for attempt := 0; attempt < n*4 && rel.Len() < n; attempt++ {
		vals := make([]value.Value, len(cfg.Attrs))
		key := ""
		for i, a := range cfg.Attrs {
			v := rng.Intn(cfg.Alphabet)
			switch a.Type {
			case value.KindString:
				vals[i] = value.NewString(string(rune('a' + v)))
			default:
				vals[i] = value.NewInt(int64(v))
			}
			key += vals[i].String() + "|"
		}
		ts := rng.Int63n(cfg.TimeMax - 1)
		te := ts + 1 + rng.Int63n(cfg.TimeMax-ts-1+1)
		if te > cfg.TimeMax {
			te = cfg.TimeMax
		}
		iv := interval.Interval{Ts: ts, Te: te}
		clash := false
		for _, u := range used[key] {
			if u.Overlaps(iv) {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		used[key] = append(used[key], iv)
		rel.Tuples = append(rel.Tuples, tuple.Tuple{Vals: vals, T: iv})
	}
	return rel
}

// Pair generates two relations over the given schemas with one shared rng.
func Pair(rng *rand.Rand, a, b Config) (*relation.Relation, *relation.Relation) {
	return Generate(rng, a), Generate(rng, b)
}
