// Package wire defines talignd's wire-level streaming protocol: the
// NDJSON frame shapes of POST /query/stream, the structured error object
// every endpoint returns, and the JSON encoding of engine values. The
// server (internal/server) and the public streaming client (package
// talign) share these types, so the two ends of the protocol cannot
// drift apart.
//
// A stream response is a sequence of newline-delimited JSON frames:
//
//	{"frame":"schema","columns":[...],"types":[...],"cache_hit":true}
//	{"frame":"rows","rows":[[...],...]}          // one per executor batch
//	{"frame":"status","row_count":123}           // terminal: success
//
// Statements that render a plan instead of rows (EXPLAIN, EXPLAIN
// ANALYZE, ANALYZE) send a single plan frame before the status frame.
// An error — before the schema frame or mid-stream — terminates the
// sequence with an error frame carrying the structured error object.
// The schema frame always lists the visible attributes followed by the
// valid-time bounds "ts" and "te".
package wire

import (
	"encoding/json"
	"fmt"
	"math"

	"talign/internal/interval"
	"talign/internal/sqlish"
	"talign/internal/value"
)

// Frame kinds.
const (
	// FrameSchema opens a row-producing response with columns and types.
	FrameSchema = "schema"
	// FrameRows carries one executor batch of rows.
	FrameRows = "rows"
	// FramePlan carries an EXPLAIN/ANALYZE plan rendering.
	FramePlan = "plan"
	// FrameStatus terminates a successful response with the row count.
	FrameStatus = "status"
	// FrameError terminates a failed response with the structured error.
	FrameError = "error"
)

// Frame is one NDJSON line of a streaming query response.
type Frame struct {
	// Frame discriminates the kind (one of the Frame* constants).
	Frame string `json:"frame"`
	// Columns and Types describe the result schema (schema frames): the
	// visible attributes followed by the valid-time bounds "ts", "te".
	Columns []string `json:"columns,omitempty"`
	Types   []string `json:"types,omitempty"`
	// CacheHit reports whether the plan came from the plan cache (schema
	// and plan frames).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Rows carries the batch's rows (rows frames), each cell encoded by
	// Cell.
	Rows [][]any `json:"rows,omitempty"`
	// Plan carries the rendering of EXPLAIN-style statements.
	Plan string `json:"plan,omitempty"`
	// RowCount is the total rows streamed (status frames; omitted when
	// zero — readers treat absence as 0).
	RowCount int64 `json:"row_count,omitempty"`
	// Error is the structured failure (error frames).
	Error *Error `json:"error,omitempty"`
}

// Fragment operations (the "op" field of a POST /fragment body). The
// fragment endpoint is the worker half of distributed execution: the
// coordinator stages shard data, executes SQL fragments (answered with
// the same NDJSON frame stream as /query/stream), and tears staged
// relations down when a distributed query finishes.
const (
	// FragmentExec runs a SQL fragment and streams frames back.
	FragmentExec = "exec"
	// FragmentStage registers (or replaces) a relation on the worker.
	FragmentStage = "stage"
	// FragmentUnstage drops a staged relation (idempotent).
	FragmentUnstage = "unstage"
	// FragmentAnalyze refreshes statistics for one staged relation, or
	// for every relation when Name is empty.
	FragmentAnalyze = "analyze"
)

// FragmentRequest is the POST /fragment body. Exec carries SQL with
// bound params; stage carries a relation — Columns/Types describe the
// visible attributes and each row appends the valid-time bounds ts, te
// (the same row shape FrameRows uses).
type FragmentRequest struct {
	Op      string   `json:"op"`
	SQL     string   `json:"sql,omitempty"`
	Params  []any    `json:"params,omitempty"`
	Batch   int      `json:"batch,omitempty"`
	Name    string   `json:"name,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Types   []string `json:"types,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
}

// FragmentAck is the JSON response of the non-exec fragment operations.
type FragmentAck struct {
	OK   bool  `json:"ok"`
	Rows int64 `json:"rows,omitempty"`
}

// Error is the structured wire error {code, message, line, col}: the
// pipeline stage code and, for parse errors, the 1-based statement
// position of the offending token.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s: %s (line %d, col %d)", e.Code, e.Message, e.Line, e.Col)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// FromError converts any pipeline error into the wire error object,
// preserving the stage code and position of structured sqlish errors and
// classifying everything else under defaultCode.
func FromError(err error, defaultCode string) *Error {
	se := sqlish.AsError(err, defaultCode)
	return &Error{Code: se.Code, Message: se.Msg, Line: se.Line, Col: se.Col}
}

// Cell converts an engine value to its JSON representation; periods
// render as their "[ts, te)" string form, and non-finite floats as
// strings (JSON has no NaN/Inf).
func Cell(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.Bool()
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Sprint(f)
		}
		return f
	case value.KindString:
		return v.Str()
	case value.KindInterval:
		return v.Interval().String()
	}
	return v.String()
}

// ValueAs converts a decoded JSON cell back to an engine value under a
// known column type (the schema frame carries the type names), undoing
// the string escapes Cell applies to values JSON cannot carry natively:
// non-finite floats ("NaN", "+Inf", "-Inf") and periods ("[ts, te)").
// Without the type hint those strings would decode as strings and the
// remote backend would diverge from the embedded one.
func ValueAs(x any, typ string) (value.Value, error) {
	if n, ok := x.(json.Number); ok && typ == "float" {
		// A whole float (2.0) serializes as the JSON number 2; the type
		// hint keeps it a float instead of collapsing it to an int.
		f, err := n.Float64()
		if err != nil {
			return value.Null, fmt.Errorf("bad number %q", n.String())
		}
		return value.NewFloat(f), nil
	}
	if s, ok := x.(string); ok {
		switch typ {
		case "float":
			switch s {
			case "NaN":
				return value.NewFloat(math.NaN()), nil
			case "+Inf":
				return value.NewFloat(math.Inf(1)), nil
			case "-Inf":
				return value.NewFloat(math.Inf(-1)), nil
			}
		case "interval", "period":
			var ts, te int64
			if _, err := fmt.Sscanf(s, "[%d, %d)", &ts, &te); err == nil {
				return value.NewInterval(interval.New(ts, te)), nil
			}
		}
	}
	return Value(x)
}

// Value converts one decoded JSON cell (or request parameter) to an
// engine value. Numbers must have been decoded with json.Number (use a
// decoder with UseNumber) so integers survive exactly.
func Value(x any) (value.Value, error) {
	switch t := x.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(t), nil
	case string:
		return value.NewString(t), nil
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return value.NewInt(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return value.Null, fmt.Errorf("bad number %q", t.String())
		}
		return value.NewFloat(f), nil
	case int64:
		// Cell's own integer output, for in-process round trips that
		// never passed through a JSON decoder.
		return value.NewInt(t), nil
	case float64:
		// A decoder without UseNumber hands numbers over as float64.
		if f := t; f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			return value.NewInt(int64(f)), nil
		}
		return value.NewFloat(t), nil
	}
	return value.Null, fmt.Errorf("unsupported JSON type %T (use null, bool, number or string)", x)
}
