package wire

import (
	"math"
	"testing"

	"talign/internal/interval"
	"talign/internal/value"
)

// TestCellValueRoundTrip: every engine value must survive
// Cell → ValueAs under its column type, including the string-escaped
// forms JSON cannot carry natively.
func TestCellValueRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		v   value.Value
		typ string
	}{
		{value.Null, "int"},
		{value.NewBool(true), "bool"},
		{value.NewInt(-42), "int"},
		{value.NewInt(1 << 60), "int"},
		{value.NewFloat(3.25), "float"},
		{value.NewFloat(math.NaN()), "float"},
		{value.NewFloat(math.Inf(1)), "float"},
		{value.NewFloat(math.Inf(-1)), "float"},
		{value.NewString("ω and 'quotes'"), "string"},
		{value.NewString("[1, 2)"), "string"}, // interval-looking string stays a string
		{value.NewInterval(interval.New(3, 9)), "interval"},
	} {
		got, err := ValueAs(Cell(tc.v), tc.typ)
		if err != nil {
			t.Fatalf("%v (%s): %v", tc.v, tc.typ, err)
		}
		if got.Kind() != tc.v.Kind() {
			t.Fatalf("%v (%s): kind %s, want %s", tc.v, tc.typ, got.Kind(), tc.v.Kind())
		}
		same := got.Compare(tc.v) == 0
		if tc.v.Kind() == value.KindFloat && math.IsNaN(tc.v.Float()) {
			same = math.IsNaN(got.Float())
		}
		if !same {
			t.Fatalf("%v (%s): round-tripped to %v", tc.v, tc.typ, got)
		}
	}
}
