package exec

import (
	"fmt"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// Limit implements LIMIT/OFFSET with early exit: it skips the first
// Offset tuples, passes through the next N, and then reports exhaustion
// WITHOUT pulling another batch from its child — the stop propagates
// upstream as simple absence of Next calls, so a cursor that reaches its
// limit never drains the rest of the pipeline (a scan under a LIMIT 10
// reads a handful of batches, not the whole table). N < 0 means no limit
// (OFFSET alone).
type Limit struct {
	// Input is the child operator; N and Offset the LIMIT/OFFSET values.
	Input  Iterator
	N      int64
	Offset int64

	remaining int64
	toSkip    int64
	done      bool
}

// NewLimit wraps in with a limit of n tuples after skipping offset tuples;
// n < 0 means unlimited.
func NewLimit(in Iterator, n, offset int64) (*Limit, error) {
	if offset < 0 {
		return nil, fmt.Errorf("exec: OFFSET must be >= 0, got %d", offset)
	}
	return &Limit{Input: in, N: n, Offset: offset}, nil
}

func (l *Limit) Schema() schema.Schema { return l.Input.Schema() }

func (l *Limit) Open() error {
	l.remaining = l.N
	l.toSkip = l.Offset
	l.done = false
	return l.Input.Open()
}

func (l *Limit) Next() ([]tuple.Tuple, error) {
	if l.done || l.remaining == 0 {
		// Early exit: the child is NOT pulled again once the limit is
		// reached. Upstream operators observe the stop as their final
		// Next never happening, and Close tears the pipeline down.
		l.done = true
		return nil, nil
	}
	for {
		b, err := l.Input.Next()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			l.done = true
			return nil, nil
		}
		if l.toSkip > 0 {
			if int64(len(b)) <= l.toSkip {
				l.toSkip -= int64(len(b))
				continue
			}
			b = b[l.toSkip:]
			l.toSkip = 0
		}
		if l.remaining >= 0 && int64(len(b)) >= l.remaining {
			b = b[:l.remaining]
			l.remaining = 0
		} else if l.remaining > 0 {
			l.remaining -= int64(len(b))
		}
		return b, nil
	}
}

func (l *Limit) Close() error { return l.Input.Close() }
