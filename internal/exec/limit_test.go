package exec

import (
	"testing"

	"talign/internal/relation"
	"talign/internal/tuple"
)

// pullCounter counts how many batches and tuples its child was asked to
// produce — the probe for the early-exit contract.
type pullCounter struct {
	Iterator
	nexts  int
	tuples int
}

func (p *pullCounter) Next() ([]tuple.Tuple, error) {
	b, err := p.Iterator.Next()
	p.nexts++
	p.tuples += len(b)
	return b, err
}

// limitRel builds an n-row single-column relation with v = 0..n-1.
func limitRel(t *testing.T, n int) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("v int")
	for i := 0; i < n; i++ {
		b.Row(int64(i), int64(i)+1, int64(i))
	}
	return b.MustBuild()
}

// TestLimitEarlyExit is the regression test for the cursor-stop contract:
// once the limit is reached, upstream operators observe the stop — the
// child is never pulled again, so a LIMIT 10 over a 100k-row scan reads
// one batch, not the whole table.
func TestLimitEarlyExit(t *testing.T) {
	rel := limitRel(t, 100000)
	scan := NewScan(rel)
	scan.SetBatchSize(64)
	probe := &pullCounter{Iterator: scan}
	lim, err := NewLimit(probe, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("LIMIT 10 returned %d rows", out.Len())
	}
	if probe.nexts != 1 || probe.tuples != 64 {
		t.Fatalf("upstream pulled %d batches / %d tuples; early exit should stop after 1 batch of 64", probe.nexts, probe.tuples)
	}
}

// TestLimitOffset checks LIMIT/OFFSET row selection and that the skip
// consumes only the batches it must.
func TestLimitOffset(t *testing.T) {
	rel := limitRel(t, 1000)
	for _, tc := range []struct {
		n, off      int64
		first, rows int64
	}{
		{10, 0, 0, 10},
		{10, 25, 25, 10},
		{-1, 990, 990, 10}, // OFFSET without LIMIT
		{0, 0, -1, 0},      // LIMIT 0: no pulls needed at all
		{2000, 500, 500, 500},
	} {
		scan := NewScan(rel)
		scan.SetBatchSize(16)
		lim, err := NewLimit(scan, tc.n, tc.off)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(lim)
		if err != nil {
			t.Fatal(err)
		}
		if int64(out.Len()) != tc.rows {
			t.Fatalf("LIMIT %d OFFSET %d: %d rows, want %d", tc.n, tc.off, out.Len(), tc.rows)
		}
		if tc.rows > 0 && out.Tuples[0].Vals[0].Int() != tc.first {
			t.Fatalf("LIMIT %d OFFSET %d: first row %v, want %d", tc.n, tc.off, out.Tuples[0].Vals[0], tc.first)
		}
	}
}

// TestLimitZeroPullsNothing: LIMIT 0 must not touch the child at all.
func TestLimitZeroPullsNothing(t *testing.T) {
	scan := NewScan(limitRel(t, 100))
	probe := &pullCounter{Iterator: scan}
	lim, err := NewLimit(probe, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(lim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || probe.nexts != 0 {
		t.Fatalf("LIMIT 0: %d rows, %d child pulls; want 0 and 0", out.Len(), probe.nexts)
	}
}
