package exec

import (
	"bytes"
	"fmt"
	"hash/maphash"
	"slices"
	"sort"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// GroupStrategy selects how FusedAdjust finds each left tuple's group
// members (the physical method of the group-construction join that the
// fused node absorbs).
type GroupStrategy uint8

const (
	// GroupHash builds a hash table over the group side's equi keys and
	// probes it per left tuple.
	GroupHash GroupStrategy = iota
	// GroupMerge key-sorts both sides by their equi keys and walks the
	// runs in lockstep.
	GroupMerge
	// GroupNestLoop scans the whole group side per left tuple (the
	// paper's fallback when θ has no equi keys).
	GroupNestLoop
	// GroupInterval uses the sort-by-start interval index over the group
	// side (the Sec. 8 access path; align modes only).
	GroupInterval
)

func (g GroupStrategy) String() string {
	return [...]string{"hash join", "merge join", "nestloop join", "interval-index join"}[g]
}

// span is one (P1, P2) pair fed into the sweep; for normalization only P1
// (the split point) is meaningful.
type span struct{ p1, p2 int64 }

// FusedAdjust fuses the group-construction join of Sec. 6.1/6.3 with the
// plane-sweep adjustment (Fig. 10) into a single operator. The classic
// pipeline materializes one concatenated row per (left tuple, group
// member) pair, sorts that stream by (left tuple, P1, P2), and has Adjust
// slice the left prefix back out — the dominant allocation source of
// ALIGN and NORMALIZE. The fused node never concatenates: it finds each
// left tuple's group members (hash, merge, nested-loop or interval-index
// strategy), reduces every member to a (P1, P2) span, sorts the small
// per-group span buffer in place, and sweeps immediately.
//
//	align:     span = [max(l.Ts, r.Ts), min(l.Te, r.Te))   (overlaps only)
//	normalize: span = [p, p] for the split point p = right[PCol],
//	           kept only when strictly inside l's interval
//
// Equi keys match through order-preserving byte encodings (ω keys never
// match). The optional Residual runs over a reused scratch concatenation
// of the pair, with env.T = the left tuple's T. Output tuples are the
// left tuple with an adjusted timestamp, in left-input order (or equi-key
// order under GroupMerge); alignment and normalization consumers are
// order-insensitive (relations are sets).
//
// The node assumes the left input is duplicate free (the paper's Sec. 3.1
// relation invariant): each left row sweeps its own group.
type FusedAdjust struct {
	batching
	Left, Right Iterator
	Mode        AdjustMode
	Strategy    GroupStrategy
	// Keys are θ's equi conjuncts: Left bound against the left schema,
	// Right against the group side's schema.
	Keys []expr.EquiPair
	// Residual is the rest of θ, bound against Concat(left, right); nil
	// when θ was fully extracted into Keys.
	Residual expr.Expr
	// PCol is the group-side column holding the split point (normalize
	// only; -1 for the align modes).
	PCol int

	out schema.Schema

	rights []tuple.Tuple
	// hash strategy: rows chain through `chain` per key hash; rkeys holds
	// the encoded equi keys (nil for unmatchable ω keys).
	seed  maphash.Seed
	heads map[uint64]int32
	chain []int32
	// merge strategy (shares rkeys)
	lrows    []tuple.Tuple
	lkeys    [][]byte
	rkeys    [][]byte
	lpos     int
	rlo, rhi int // current right-side equi-key run
	// interval strategy
	starts []int64
	maxDur int64

	lc       cursor
	keyBuf   []byte
	arena    []byte
	concat   []value.Value
	spans    []span
	env      expr.Env // reused eval scratch: avoids a per-row heap Env
	leftDone bool
}

// NewFusedAdjust builds the node. For the align modes pass pCol < 0; for
// normalize, pCol must address a group-side column and the interval
// strategy is rejected (split points are nontemporal).
func NewFusedAdjust(l, r Iterator, mode AdjustMode, strategy GroupStrategy, keys []expr.EquiPair, residual expr.Expr, pCol int) (*FusedAdjust, error) {
	if mode == ModeNormalize {
		if pCol < 0 || pCol >= r.Schema().Len() {
			return nil, fmt.Errorf("exec: fused normalize split column %d out of range for %s", pCol, r.Schema())
		}
		if strategy == GroupInterval {
			return nil, fmt.Errorf("exec: fused normalize cannot use the interval-index strategy")
		}
	} else {
		pCol = -1
	}
	if strategy == GroupInterval && len(keys) > 0 {
		return nil, fmt.Errorf("exec: interval-index strategy requires a keyless θ")
	}
	if (strategy == GroupHash || strategy == GroupMerge) && len(keys) == 0 {
		return nil, fmt.Errorf("exec: %s strategy requires equi keys", strategy)
	}
	return &FusedAdjust{
		Left: l, Right: r,
		Mode: mode, Strategy: strategy,
		Keys: keys, Residual: residual, PCol: pCol,
		out: l.Schema(),
	}, nil
}

func (f *FusedAdjust) Schema() schema.Schema { return f.out }

// evalKeyInto appends the encoded equi key of t (left or right side) to
// dst; hasNull reports an ω key component (which can never match).
func (f *FusedAdjust) evalKeyInto(dst []byte, t tuple.Tuple, left bool) (key []byte, hasNull bool, err error) {
	f.env = expr.Env{Vals: t.Vals, T: t.T}
	for _, k := range f.Keys {
		e := k.Right
		if left {
			e = k.Left
		}
		v, err := e.Eval(&f.env)
		if err != nil {
			return dst, false, err
		}
		if v.IsNull() {
			hasNull = true
		}
		dst = v.AppendKey(dst)
	}
	return dst, hasNull, nil
}

func (f *FusedAdjust) Open() error {
	if err := f.Left.Open(); err != nil {
		return err
	}
	if err := f.Right.Open(); err != nil {
		return err
	}
	var err error
	f.rights, err = drainAppend(f.rights[:0], f.Right)
	if err != nil {
		return err
	}
	f.leftDone = false
	f.lc.init(f.Left)

	switch f.Strategy {
	case GroupHash:
		// Encode every group row's equi key once (ω keys become nil: they
		// can never match, and unmatched group rows never surface — the
		// group join is a left outer join), then chain rows by key hash.
		// Arena + flat chains: no per-row map-key allocations.
		f.arena = f.arena[:0]
		var err error
		if f.rkeys, err = f.encodeKeys(f.rights, f.rkeys, false, true); err != nil {
			return err
		}
		f.seed = maphash.MakeSeed()
		f.heads = make(map[uint64]int32, len(f.rights))
		f.chain = f.chain[:0]
		for i := range f.rights {
			f.chain = append(f.chain, 0)
			if f.rkeys[i] == nil {
				continue
			}
			h := maphash.Bytes(f.seed, f.rkeys[i])
			f.chain[i] = f.heads[h]
			f.heads[h] = int32(i) + 1
		}
	case GroupMerge:
		// Materialize both sides, drop unmatchable ω-keyed group rows,
		// and key-sort each side by its encoded equi keys; Next walks the
		// runs in lockstep.
		f.lrows, err = drainAppend(f.lrows[:0], f.Left)
		if err != nil {
			return err
		}
		f.arena = f.arena[:0]
		if f.lkeys, err = f.encodeKeys(f.lrows, f.lkeys, true, false); err != nil {
			return err
		}
		tuple.KeySort(f.lrows, f.lkeys)
		kept := f.rights[:0]
		for _, t := range f.rights {
			kb, hasNull, err := f.evalKeyInto(f.keyBuf[:0], t, false)
			f.keyBuf = kb
			if err != nil {
				return err
			}
			if !hasNull {
				kept = append(kept, t)
			}
		}
		f.rights = kept
		if f.rkeys, err = f.encodeKeys(f.rights, f.rkeys, false, false); err != nil {
			return err
		}
		tuple.KeySort(f.rights, f.rkeys)
		f.lpos, f.rlo, f.rhi = 0, 0, 0
	case GroupInterval:
		f.maxDur = 0
		for _, t := range f.rights {
			if d := t.T.Duration(); d > f.maxDur {
				f.maxDur = d
			}
		}
		tuple.KeySortFunc(f.rights, func(t tuple.Tuple, key []byte) []byte {
			return value.AppendInt64Key(key, t.T.Ts)
		})
		f.starts = f.starts[:0]
		for _, t := range f.rights {
			f.starts = append(f.starts, t.T.Ts)
		}
	}
	return nil
}

// encodeKeys encodes one side's equi keys into the shared arena; with
// nilOnNull set, rows whose key contains ω get a nil key instead.
func (f *FusedAdjust) encodeKeys(rows []tuple.Tuple, keys [][]byte, left, nilOnNull bool) ([][]byte, error) {
	keys = keys[:0]
	for i := range rows {
		start := len(f.arena)
		kb, hasNull, err := f.evalKeyInto(f.arena, rows[i], left)
		if err != nil {
			return nil, err
		}
		if nilOnNull && hasNull {
			keys = append(keys, nil)
			continue
		}
		f.arena = kb
		keys = append(keys, kb[start:len(kb):len(kb)])
	}
	return keys, nil
}

// keysMatch checks the equi keys pairwise for the strategies that did not
// already match them structurally (nested loop). ω never matches.
func (f *FusedAdjust) keysMatch(l, r tuple.Tuple) (bool, error) {
	for _, k := range f.Keys {
		f.env = expr.Env{Vals: l.Vals, T: l.T}
		lv, err := k.Left.Eval(&f.env)
		if err != nil {
			return false, err
		}
		f.env = expr.Env{Vals: r.Vals, T: r.T}
		rv, err := k.Right.Eval(&f.env)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() || !lv.Equal(rv) {
			return false, nil
		}
	}
	return true, nil
}

// addCandidate applies the equi keys (nested loop only), the native
// temporal predicate and the residual to one (left, group member) pair,
// appending its span.
func (f *FusedAdjust) addCandidate(l, r tuple.Tuple) error {
	var p1, p2 int64
	if f.Mode == ModeNormalize {
		pv := r.Vals[f.PCol]
		if pv.IsNull() {
			return nil
		}
		p := pv.Int()
		if p <= l.T.Ts || p >= l.T.Te {
			return nil // only points strictly inside split
		}
		p1, p2 = p, p
	} else {
		// Align modes: overlap means a non-empty intersection.
		p1, p2 = l.T.Ts, l.T.Te
		if r.T.Ts > p1 {
			p1 = r.T.Ts
		}
		if r.T.Te < p2 {
			p2 = r.T.Te
		}
		if p1 >= p2 {
			return nil
		}
	}
	if f.Strategy == GroupNestLoop && len(f.Keys) > 0 {
		ok, err := f.keysMatch(l, r)
		if err != nil || !ok {
			return err
		}
	}
	if f.Residual != nil {
		f.concat = append(append(f.concat[:0], l.Vals...), r.Vals...)
		f.env = expr.Env{Vals: f.concat, T: l.T}
		ok, err := expr.EvalBool(f.Residual, &f.env)
		if err != nil || !ok {
			return err
		}
	}
	f.spans = append(f.spans, span{p1: p1, p2: p2})
	return nil
}

// sweep sorts the gathered spans and runs the Fig. 10 plane sweep for one
// left tuple, emitting adjusted copies into outBuf.
func (f *FusedAdjust) sweep(l tuple.Tuple) {
	slices.SortFunc(f.spans, func(a, b span) int {
		switch {
		case a.p1 < b.p1:
			return -1
		case a.p1 > b.p1:
			return 1
		case a.p2 < b.p2:
			return -1
		case a.p2 > b.p2:
			return 1
		}
		return 0
	})
	emit := func(ts, te int64) {
		if ts < te {
			f.outBuf = append(f.outBuf, l.WithT(interval.Interval{Ts: ts, Te: te}))
		}
	}
	sweep := l.T.Ts
	if f.Mode == ModeNormalize {
		for _, sp := range f.spans {
			if sp.p1 <= sweep {
				continue // duplicate split point
			}
			emit(sweep, sp.p1)
			sweep = sp.p1
		}
		emit(sweep, l.T.Te)
		return
	}
	var lastP1, lastP2 int64
	lastSet := false
	for _, sp := range f.spans {
		// Gap before this intersection (first block of Fig. 10).
		if sweep < sp.p1 {
			emit(sweep, sp.p1)
			sweep = sp.p1
		}
		// The intersection itself, skipping adjacent duplicates; ModeGaps
		// advances the sweep without emitting it.
		if f.Mode != ModeGaps && (!lastSet || sp.p1 != lastP1 || sp.p2 != lastP2) {
			emit(sp.p1, sp.p2)
			lastP1, lastP2, lastSet = sp.p1, sp.p2, true
		}
		if sp.p2 > sweep {
			sweep = sp.p2
		}
	}
	// Trailing gap (align), or the whole interval when the group was
	// empty — the ω-padded row of the classic pipeline.
	emit(sweep, l.T.Te)
}

func (f *FusedAdjust) Next() ([]tuple.Tuple, error) {
	f.resetOut()
	target := f.batchCap()
	for len(f.outBuf) < target && !f.leftDone {
		var l tuple.Tuple
		if f.Strategy == GroupMerge {
			if f.lpos >= len(f.lrows) {
				f.leftDone = true
				continue
			}
			l = f.lrows[f.lpos]
			f.spans = f.spans[:0]
			if err := f.gatherMerge(); err != nil {
				return nil, err
			}
			f.lpos++
		} else {
			var ok bool
			var err error
			l, ok, err = f.lc.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				f.leftDone = true
				continue
			}
			f.spans = f.spans[:0]
			switch f.Strategy {
			case GroupHash:
				err = f.gatherHash(l)
			case GroupNestLoop:
				for i := range f.rights {
					if err = f.addCandidate(l, f.rights[i]); err != nil {
						break
					}
				}
			case GroupInterval:
				err = f.gatherInterval(l)
			}
			if err != nil {
				return nil, err
			}
		}
		f.sweep(l)
	}
	return f.outBuf, nil
}

// gatherHash fills f.spans for one left tuple under the hash strategy.
func (f *FusedAdjust) gatherHash(l tuple.Tuple) error {
	kb, hasNull, err := f.evalKeyInto(f.keyBuf[:0], l, true)
	f.keyBuf = kb
	if err != nil {
		return err
	}
	if hasNull {
		return nil // ω keys never match: empty group
	}
	h := maphash.Bytes(f.seed, kb)
	for j := f.heads[h]; j != 0; j = f.chain[j-1] {
		if bytes.Equal(f.rkeys[j-1], kb) {
			if err := f.addCandidate(l, f.rights[j-1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// gatherMerge collects spans for f.lrows[f.lpos], advancing the shared
// right-run window. Both sides are sorted by encoded equi keys, so the
// window only moves forward.
func (f *FusedAdjust) gatherMerge() error {
	l := f.lrows[f.lpos]
	lk := f.lkeys[f.lpos]
	// Position the right run at the first key >= lk.
	if f.rlo == f.rhi || bytes.Compare(f.rkeys[f.rlo], lk) < 0 {
		lo := f.rhi
		for lo < len(f.rkeys) && bytes.Compare(f.rkeys[lo], lk) < 0 {
			lo++
		}
		hi := lo
		for hi < len(f.rkeys) && bytes.Equal(f.rkeys[hi], lk) {
			hi++
		}
		f.rlo, f.rhi = lo, hi
	}
	if f.rlo < f.rhi && bytes.Equal(f.rkeys[f.rlo], lk) {
		for i := f.rlo; i < f.rhi; i++ {
			if err := f.addCandidate(l, f.rights[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *FusedAdjust) gatherInterval(l tuple.Tuple) error {
	// Window [lower bound, Te): the only rows that can overlap l (see
	// IntervalJoin; same index structure).
	lo := l.T.Ts - f.maxDur
	pos := sort.Search(len(f.starts), func(i int) bool { return f.starts[i] > lo })
	for ; pos < len(f.rights) && f.starts[pos] < l.T.Te; pos++ {
		if err := f.addCandidate(l, f.rights[pos]); err != nil {
			return err
		}
	}
	return nil
}

func (f *FusedAdjust) Close() error {
	f.rights = nil
	f.heads = nil
	f.chain = nil
	f.lrows = nil
	f.lkeys = nil
	f.rkeys = nil
	f.starts = nil
	f.arena = nil
	f.outBuf = nil
	err1 := f.Left.Close()
	err2 := f.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
