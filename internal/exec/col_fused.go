// ColFusedAdjust: the vectorized fused group-construction + plane-sweep
// operator. Same algorithm as the row FusedAdjust (see fused_adjust.go
// for the algorithmic commentary), but the group side accumulates into a
// columnar store whose equi keys are encoded straight from the vectors,
// and the sweep reads only the two valid-time columns of the left batch.
// Output rows are appended columnar — the left row's attribute vectors
// are copied once per emitted segment, never boxed into tuples.
//
// The columnar node supports the hash and nested-loop strategies with
// fully extracted join conditions (no residual); the planner falls back
// to the row operator for merge/interval strategies and residual θ.
package exec

import (
	"bytes"
	"hash/maphash"
	"slices"

	"talign/internal/colbatch"
	"talign/internal/expr"
	"talign/internal/schema"
)

// ColFusedAdjust adjusts left tuples against their group on the right.
type ColFusedAdjust struct {
	batching
	Left, Right ColIterator
	Mode        AdjustMode
	Strategy    GroupStrategy
	Keys        []expr.EquiPair
	PCol        int

	out schema.Schema

	lkeyVals []colVal // compiled left key accessors
	rkeyVals []colVal // compiled right key accessors

	store       *colbatch.Batch // accumulated group side
	sharedStore bool            // store aliases a relation's cached image
	seed        maphash.Seed
	heads       []int32 // flat hash table: bucket -> store row index + 1
	mask        uint64
	chain       []int32
	rhash       []uint64 // full hash per store row, pre-filters probes
	rkeys       [][]byte
	arena       []byte

	keyBuf   []byte
	spans    []span
	outB     colbatch.Batch
	lb       *colbatch.Batch
	lpos     int
	leftDone bool
}

// NewColFusedAdjust compiles the fused node; ok=false when the mode,
// strategy or key shapes need the row operator.
func NewColFusedAdjust(l, r ColIterator, mode AdjustMode, strategy GroupStrategy, keys []expr.EquiPair, pCol int) (*ColFusedAdjust, bool) {
	if strategy != GroupHash && strategy != GroupNestLoop {
		return nil, false
	}
	if strategy == GroupHash && len(keys) == 0 {
		return nil, false
	}
	if mode == ModeNormalize {
		if pCol < 0 || pCol >= r.Schema().Len() {
			return nil, false
		}
	} else {
		pCol = -1
	}
	f := &ColFusedAdjust{
		Left: l, Right: r,
		Mode: mode, Strategy: strategy,
		Keys: keys, PCol: pCol,
		out: l.Schema(),
	}
	for _, k := range keys {
		lv, ok := compileOperand(k.Left)
		if !ok {
			return nil, false
		}
		rv, ok := compileOperand(k.Right)
		if !ok {
			return nil, false
		}
		f.lkeyVals = append(f.lkeyVals, lv)
		f.rkeyVals = append(f.rkeyVals, rv)
	}
	return f, true
}

// Schema implements ColIterator.
func (f *ColFusedAdjust) Schema() schema.Schema { return f.out }

// Open implements ColIterator: it drains the group side into the
// columnar store and, under the hash strategy, builds the arena-backed
// key chains exactly like the row operator.
func (f *ColFusedAdjust) Open() error {
	if err := f.Left.Open(); err != nil {
		return err
	}
	if err := f.Right.Open(); err != nil {
		return err
	}
	if cs, ok := f.Right.(*ColScan); ok {
		// The group side is a bare columnar scan: alias the relation's
		// cached image (populated by the Open above) instead of copying
		// it. The store is only ever read, so sharing is safe, and it
		// skips one full-relation copy per execution.
		f.store, f.sharedStore = cs.img, true
	} else {
		if f.store == nil || f.sharedStore {
			f.store = colbatch.New(f.Right.Schema())
		} else {
			f.store.ResetSchema(f.Right.Schema())
		}
		f.sharedStore = false
		for {
			b, err := f.Right.NextCol()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			f.store.AppendBatch(b)
		}
	}
	f.outB.ResetSchema(f.out)
	f.lb, f.lpos, f.leftDone = nil, 0, false

	if f.Strategy == GroupHash {
		f.arena = f.arena[:0]
		f.rkeys = f.rkeys[:0]
		for j := 0; j < f.store.Len(); j++ {
			start := len(f.arena)
			kb, hasNull := f.appendStoreKey(f.arena, j)
			if hasNull {
				f.rkeys = append(f.rkeys, nil)
				continue
			}
			f.arena = kb
			f.rkeys = append(f.rkeys, kb[start:len(kb):len(kb)])
		}
		// Chained flat hash table instead of a Go map: buckets hold
		// store-row-index+1, collisions thread through chain, and the
		// stored full hashes pre-filter probes before the byte compare.
		f.seed = maphash.MakeSeed()
		n := f.store.Len()
		size := 1
		for size < 2*n {
			size <<= 1
		}
		if cap(f.heads) >= size {
			f.heads = f.heads[:size]
			clear(f.heads)
		} else {
			f.heads = make([]int32, size)
		}
		f.mask = uint64(size - 1)
		f.chain = f.chain[:0]
		f.rhash = f.rhash[:0]
		for j := 0; j < n; j++ {
			f.chain = append(f.chain, 0)
			f.rhash = append(f.rhash, 0)
			if f.rkeys[j] == nil {
				continue
			}
			h := maphash.Bytes(f.seed, f.rkeys[j])
			f.rhash[j] = h
			bkt := h & f.mask
			f.chain[j] = f.heads[bkt]
			f.heads[bkt] = int32(j) + 1
		}
	}
	return nil
}

// appendStoreKey encodes the group-side equi key of store row j.
func (f *ColFusedAdjust) appendStoreKey(dst []byte, j int) (key []byte, hasNull bool) {
	for _, kv := range f.rkeyVals {
		v := kv(f.store, j)
		if v.IsNull() {
			hasNull = true
		}
		dst = v.AppendKey(dst)
	}
	return dst, hasNull
}

// appendLeftKey encodes the left equi key of physical row `row` of b.
func (f *ColFusedAdjust) appendLeftKey(dst []byte, b *colbatch.Batch, row int) (key []byte, hasNull bool) {
	for _, kv := range f.lkeyVals {
		v := kv(b, row)
		if v.IsNull() {
			hasNull = true
		}
		dst = v.AppendKey(dst)
	}
	return dst, hasNull
}

// NextCol implements ColIterator.
func (f *ColFusedAdjust) NextCol() (*colbatch.Batch, error) {
	f.outB.Reset()
	target := f.batchCap()
	for f.outB.Len() < target && !f.leftDone {
		if f.lb == nil || f.lpos >= f.lb.NumRows() {
			b, err := f.Left.NextCol()
			if err != nil {
				return nil, err
			}
			if b == nil {
				f.leftDone = true
				continue
			}
			f.lb, f.lpos = b, 0
			continue
		}
		row := f.lb.RowAt(f.lpos)
		f.lpos++
		lts, lte := f.lb.TS[row], f.lb.TE[row]
		f.spans = f.spans[:0]
		if f.Strategy == GroupHash {
			kb, hasNull := f.appendLeftKey(f.keyBuf[:0], f.lb, row)
			f.keyBuf = kb
			if !hasNull { // ω keys never match: empty group, bare sweep
				h := maphash.Bytes(f.seed, kb)
				for j := f.heads[h&f.mask]; j != 0; j = f.chain[j-1] {
					if f.rhash[j-1] == h && bytes.Equal(f.rkeys[j-1], kb) {
						f.addCandidate(row, int(j-1), lts, lte)
					}
				}
			}
		} else {
			for j := 0; j < f.store.Len(); j++ {
				f.addCandidate(row, j, lts, lte)
			}
		}
		f.sweep(row, lts, lte)
	}
	if f.outB.Len() == 0 {
		return nil, nil
	}
	return &f.outB, nil
}

// addCandidate reduces one (left row, store row) pair to a span, applying
// the native temporal predicate and (nested loop) the equi keys — the
// columnar twin of FusedAdjust.addCandidate, minus error paths (compiled
// accessors cannot fail).
func (f *ColFusedAdjust) addCandidate(lrow, j int, lts, lte int64) {
	var p1, p2 int64
	if f.Mode == ModeNormalize {
		pv := &f.store.Cols[f.PCol]
		if pv.IsNull(j) {
			return
		}
		p := pv.Int(j)
		if p <= lts || p >= lte {
			return // only points strictly inside split
		}
		p1, p2 = p, p
	} else {
		p1, p2 = lts, lte
		if ts := f.store.TS[j]; ts > p1 {
			p1 = ts
		}
		if te := f.store.TE[j]; te < p2 {
			p2 = te
		}
		if p1 >= p2 {
			return
		}
	}
	if f.Strategy == GroupNestLoop && len(f.Keys) > 0 {
		for k := range f.lkeyVals {
			lv := f.lkeyVals[k](f.lb, lrow)
			rv := f.rkeyVals[k](f.store, j)
			if lv.IsNull() || rv.IsNull() || !lv.Equal(rv) {
				return
			}
		}
	}
	f.spans = append(f.spans, span{p1: p1, p2: p2})
}

// sweep is the Fig. 10 plane sweep over the gathered spans of one left
// row, identical to the row operator's sweep; emitted segments copy the
// left row's columns into the output batch.
func (f *ColFusedAdjust) sweep(row int, lts, lte int64) {
	slices.SortFunc(f.spans, func(a, b span) int {
		switch {
		case a.p1 < b.p1:
			return -1
		case a.p1 > b.p1:
			return 1
		case a.p2 < b.p2:
			return -1
		case a.p2 > b.p2:
			return 1
		}
		return 0
	})
	emit := func(ts, te int64) {
		if ts < te {
			f.outB.AppendFrom(f.lb, row, ts, te)
		}
	}
	sweep := lts
	if f.Mode == ModeNormalize {
		for _, sp := range f.spans {
			if sp.p1 <= sweep {
				continue // duplicate split point
			}
			emit(sweep, sp.p1)
			sweep = sp.p1
		}
		emit(sweep, lte)
		return
	}
	var lastP1, lastP2 int64
	lastSet := false
	for _, sp := range f.spans {
		if sweep < sp.p1 {
			emit(sweep, sp.p1)
			sweep = sp.p1
		}
		if f.Mode != ModeGaps && (!lastSet || sp.p1 != lastP1 || sp.p2 != lastP2) {
			emit(sp.p1, sp.p2)
			lastP1, lastP2, lastSet = sp.p1, sp.p2, true
		}
		if sp.p2 > sweep {
			sweep = sp.p2
		}
	}
	emit(sweep, lte)
}

// Close implements ColIterator.
func (f *ColFusedAdjust) Close() error {
	f.store = nil
	f.heads = nil
	f.chain = nil
	f.rhash = nil
	f.rkeys = nil
	f.arena = nil
	err1 := f.Left.Close()
	err2 := f.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
