package exec

import (
	"hash/maphash"

	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// HashJoin is an equi-join: the right input is built into a hash table on
// the key expressions, the left input probes it batch by batch. A residual
// condition (evaluated like NestedLoopJoin's) and optional timestamp
// equality filter candidate pairs. ω keys never match (SQL semantics);
// unmatched rows surface through the outer join types.
type HashJoin struct {
	batching
	Left, Right Iterator
	// Keys are pairwise equality conditions: Keys[i].Left is bound against
	// the left schema, Keys[i].Right against the right schema.
	Keys     []expr.EquiPair
	Residual expr.Expr // bound against Concat(left, right); may be nil
	Type     JoinType
	MatchT   bool

	core   joinCore
	out    schema.Schema
	seed   maphash.Seed
	table  map[uint64][]buildRow
	left   cursor
	cur    tuple.Tuple
	curKey []value.Value
	curOK  bool
	curHit bool
	bucket []buildRow
	bktPos int
	drainB []buildRow
	drainP int
	drain  bool
	env    expr.Env // reused eval scratch
	done   bool
}

type buildRow struct {
	t       tuple.Tuple
	key     []value.Value
	matched bool
}

// NewHashJoin constructs the node.
func NewHashJoin(l, r Iterator, keys []expr.EquiPair, residual expr.Expr, typ JoinType, matchT bool) *HashJoin {
	h := &HashJoin{Left: l, Right: r, Keys: keys, Residual: residual, Type: typ, MatchT: matchT}
	h.core = joinCore{typ: typ, lWidth: l.Schema().Len(), rWidth: r.Schema().Len(), matchT: matchT}
	if typ.projectsLeftOnly() {
		h.out = l.Schema()
	} else {
		h.out = l.Schema().Concat(r.Schema())
	}
	h.seed = maphash.MakeSeed()
	return h
}

func (h *HashJoin) Schema() schema.Schema { return h.out }

func (h *HashJoin) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.table = make(map[uint64][]buildRow)
	for {
		batch, err := h.Right.Next()
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			break
		}
		// Pre-size one key slab for the whole build batch.
		flat := make([]value.Value, len(batch)*len(h.Keys))
		for i := range batch {
			key := flat[i*len(h.Keys) : (i+1)*len(h.Keys) : (i+1)*len(h.Keys)]
			hv, nullKey, err := h.evalKey(batch[i], false, key)
			if err != nil {
				return err
			}
			row := buildRow{t: batch[i], key: key}
			if nullKey {
				// ω keys can never match; park them under a reserved bucket
				// so right/full outer can still drain them.
				h.table[^uint64(0)] = append(h.table[^uint64(0)], row)
			} else {
				h.table[hv] = append(h.table[hv], row)
			}
		}
	}
	h.left.init(h.Left)
	h.curOK = false
	h.drain = false
	h.done = false
	return nil
}

// evalKey computes the key values into key and returns their hash; left
// selects which side of the EquiPairs to evaluate. key must have length
// len(h.Keys).
func (h *HashJoin) evalKey(t tuple.Tuple, left bool, key []value.Value) (hash uint64, hasNull bool, err error) {
	h.env = expr.Env{Vals: t.Vals, T: t.T}
	for i, k := range h.Keys {
		e := k.Right
		if left {
			e = k.Left
		}
		v, err := e.Eval(&h.env)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			hasNull = true
		}
		key[i] = v
	}
	var mh maphash.Hash
	mh.SetSeed(h.seed)
	for _, v := range key {
		v.Hash(&mh)
	}
	return mh.Sum64(), hasNull, nil
}

func keysEqual(a, b []value.Value) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func (h *HashJoin) Next() ([]tuple.Tuple, error) {
	h.resetOut()
	target := h.batchCap()
	for len(h.outBuf) < target && !h.done {
		if h.drain {
			for h.drainP < len(h.drainB) && len(h.outBuf) < target {
				row := h.drainB[h.drainP]
				h.drainP++
				if !row.matched {
					h.outBuf = append(h.outBuf, h.core.padLeft(row.t))
				}
			}
			if h.drainP >= len(h.drainB) {
				h.done = true
			}
			continue
		}
		if !h.curOK {
			l, ok, err := h.left.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				if h.Type == RightOuterJoin || h.Type == FullOuterJoin {
					h.startDrain()
					continue
				}
				h.done = true
				continue
			}
			if h.curKey == nil {
				h.curKey = make([]value.Value, len(h.Keys))
			}
			hv, nullKey, err := h.evalKey(l, true, h.curKey)
			if err != nil {
				return nil, err
			}
			h.cur = l
			h.curOK = true
			h.curHit = false
			h.bktPos = 0
			if nullKey {
				h.bucket = nil
			} else {
				h.bucket = h.table[hv]
			}
		}
		disqualified := false
		for h.bktPos < len(h.bucket) {
			row := &h.bucket[h.bktPos]
			h.bktPos++
			if !keysEqual(h.curKey, row.key) {
				continue
			}
			ok, err := h.core.matches(h.Residual, h.cur, row.t)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			h.curHit = true
			row.matched = true
			switch h.Type {
			case SemiJoin:
				h.curOK = false
				h.outBuf = append(h.outBuf, h.cur)
				disqualified = true
			case AntiJoin:
				h.curOK = false
				disqualified = true
			default:
				h.outBuf = append(h.outBuf, h.core.combine(h.cur, row.t))
				if len(h.outBuf) >= target {
					// Batch full mid-bucket: bktPos persists, the next call
					// resumes with the same probe tuple.
					return h.outBuf, nil
				}
			}
			if disqualified {
				break
			}
		}
		if disqualified {
			continue
		}
		h.curOK = false
		if !h.curHit {
			switch h.Type {
			case LeftOuterJoin, FullOuterJoin:
				h.outBuf = append(h.outBuf, h.core.padRight(h.cur))
			case AntiJoin:
				h.outBuf = append(h.outBuf, h.cur)
			}
		}
	}
	return h.outBuf, nil
}

func (h *HashJoin) startDrain() {
	h.drain = true
	h.drainP = 0
	h.drainB = h.drainB[:0]
	for _, bucket := range h.table {
		h.drainB = append(h.drainB, bucket...)
	}
	// Deterministic drain order: sort by tuple order. Buckets iterate in
	// arbitrary map order, which would make full outer join output order
	// nondeterministic across runs.
	sortBuildRows(h.drainB)
}

func sortBuildRows(rows []buildRow) {
	tuple.KeySortFunc(rows, func(r buildRow, key []byte) []byte {
		return r.t.AppendKey(key)
	})
}

func (h *HashJoin) Close() error {
	h.table = nil
	h.drainB = nil
	err1 := h.Left.Close()
	err2 := h.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
