package exec

import (
	"testing"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/value"
)

func scanOf(rel *relation.Relation) Iterator { return NewScan(rel) }

func TestHashAggregateBasics(t *testing.T) {
	in := relation.NewBuilder("g string", "v int").
		Row(0, 10, "a", 1).
		Row(0, 10, "a", 3).
		Row(0, 10, "b", 5).
		MustBuild()
	groupBy := []expr.Expr{expr.ColIdx{Idx: 0, Typ: value.KindString}}
	arg := expr.ColIdx{Idx: 1, Typ: value.KindInt}
	agg, err := NewHashAggregate(scanOf(in), groupBy, []string{"g"}, false, []AggSpec{
		{Func: AggCountStar, Name: "c"},
		{Func: AggSum, Arg: arg, Name: "s"},
		{Func: AggAvg, Arg: arg, Name: "a"},
		{Func: AggMin, Arg: arg, Name: "mn"},
		{Func: AggMax, Arg: arg, Name: "mx"},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 2 {
		t.Fatalf("want 2 groups, got %d:\n%s", out.Len(), out)
	}
	a := out.Tuples[0]
	if a.Vals[0].Str() != "a" || a.Vals[1].Int() != 2 || a.Vals[2].Int() != 4 ||
		a.Vals[3].Float() != 2.0 || a.Vals[4].Int() != 1 || a.Vals[5].Int() != 3 {
		t.Fatalf("group a wrong: %v", a)
	}
	b := out.Tuples[1]
	if b.Vals[0].Str() != "b" || b.Vals[1].Int() != 1 || b.Vals[2].Int() != 5 {
		t.Fatalf("group b wrong: %v", b)
	}
}

func TestHashAggregateNullHandling(t *testing.T) {
	in := relation.New(relation.NewBuilder("g string", "v int").MustBuild().Schema)
	in.MustAppend(mkT(0, 5, value.NewString("a"), value.Null))
	in.MustAppend(mkT(0, 5, value.NewString("a"), value.NewInt(4)))
	arg := expr.ColIdx{Idx: 1, Typ: value.KindInt}
	agg, err := NewHashAggregate(scanOf(in),
		[]expr.Expr{expr.ColIdx{Idx: 0, Typ: value.KindString}}, []string{"g"}, false,
		[]AggSpec{
			{Func: AggCountStar, Name: "all"},
			{Func: AggCount, Arg: arg, Name: "nn"},
			{Func: AggSum, Arg: arg, Name: "s"},
		})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	row := out.Tuples[0]
	if row.Vals[1].Int() != 2 || row.Vals[2].Int() != 1 || row.Vals[3].Int() != 4 {
		t.Fatalf("null handling wrong: %v", row)
	}
}

func TestHashAggregateGlobalEmptyInput(t *testing.T) {
	in := relation.NewBuilder("v int").MustBuild()
	arg := expr.ColIdx{Idx: 0, Typ: value.KindInt}
	agg, err := NewHashAggregate(scanOf(in), nil, nil, false, []AggSpec{
		{Func: AggCountStar, Name: "c"},
		{Func: AggSum, Arg: arg, Name: "s"},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 1 || out.Tuples[0].Vals[0].Int() != 0 || !out.Tuples[0].Vals[1].IsNull() {
		t.Fatalf("global empty aggregation wrong: %s", out)
	}
}

func TestHashAggregateGroupByT(t *testing.T) {
	in := relation.NewBuilder("v int").
		Row(0, 5, 1).
		Row(0, 5, 2).
		Row(5, 9, 3).
		MustBuild()
	arg := expr.ColIdx{Idx: 0, Typ: value.KindInt}
	agg, err := NewHashAggregate(scanOf(in), nil, nil, true, []AggSpec{
		{Func: AggSum, Arg: arg, Name: "s"},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := relation.NewBuilder("s int").
		Row(0, 5, 3).
		Row(5, 9, 3).
		MustBuild()
	if !relation.SetEqual(out, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", out, want)
	}
}

func TestSetOps(t *testing.T) {
	a := relation.NewBuilder("x string").
		Row(0, 5, "p").
		Row(5, 9, "q").
		MustBuild()
	b := relation.NewBuilder("x string").
		Row(0, 5, "p").
		Row(9, 12, "r").
		MustBuild()
	mk := func(kind SetOpKind) *relation.Relation {
		op, err := NewSetOp(NewScan(a), NewScan(b), kind)
		if err != nil {
			t.Fatalf("setop: %v", err)
		}
		out, err := Collect(op)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	union := mk(UnionOp)
	wantU := relation.NewBuilder("x string").
		Row(0, 5, "p").
		Row(5, 9, "q").
		Row(9, 12, "r").
		MustBuild()
	if !relation.SetEqual(union, wantU) {
		t.Fatalf("union:\n%s", union)
	}
	inter := mk(IntersectOp)
	wantI := relation.NewBuilder("x string").Row(0, 5, "p").MustBuild()
	if !relation.SetEqual(inter, wantI) {
		t.Fatalf("intersect:\n%s", inter)
	}
	except := mk(ExceptOp)
	wantE := relation.NewBuilder("x string").Row(5, 9, "q").MustBuild()
	if !relation.SetEqual(except, wantE) {
		t.Fatalf("except:\n%s", except)
	}
}

func TestSetOpRejectsIncompatible(t *testing.T) {
	a := relation.NewBuilder("x string").MustBuild()
	b := relation.NewBuilder("x string", "y int").MustBuild()
	if _, err := NewSetOp(NewScan(a), NewScan(b), UnionOp); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestSetOpTimestampsDistinguish(t *testing.T) {
	// Same values over different intervals are different set elements.
	a := relation.NewBuilder("x string").Row(0, 5, "p").MustBuild()
	b := relation.NewBuilder("x string").Row(5, 9, "p").MustBuild()
	op, err := NewSetOp(NewScan(a), NewScan(b), UnionOp)
	if err != nil {
		t.Fatalf("setop: %v", err)
	}
	out, err := Collect(op)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 2 {
		t.Fatalf("want 2 tuples, got:\n%s", out)
	}
}

func TestDistinct(t *testing.T) {
	in := relation.NewBuilder("x string").
		Row(0, 5, "p").
		Row(0, 5, "p").
		Row(5, 9, "p").
		MustBuild()
	out, err := Collect(NewDistinct(NewScan(in)))
	if err != nil {
		t.Fatalf("distinct: %v", err)
	}
	if out.Len() != 2 {
		t.Fatalf("want 2 tuples, got:\n%s", out)
	}
}

func TestSortOrdersAndTieBreaks(t *testing.T) {
	in := relation.NewBuilder("x string", "v int").
		Row(5, 9, "b", 2).
		Row(0, 5, "a", 2).
		Row(0, 3, "a", 1).
		MustBuild()
	s := NewSort(NewScan(in),
		SortKey{Expr: expr.ColIdx{Idx: 1, Typ: value.KindInt}, Desc: true},
		SortKey{Expr: expr.TStart{}},
	)
	out, err := Collect(s)
	if err != nil {
		t.Fatalf("sort: %v", err)
	}
	if out.Tuples[0].Vals[0].Str() != "a" || out.Tuples[0].T.Ts != 0 {
		t.Fatalf("first row wrong: %v", out.Tuples[0])
	}
	if out.Tuples[2].Vals[1].Int() != 1 {
		t.Fatalf("last row wrong: %v", out.Tuples[2])
	}
}

func TestFilterAndProject(t *testing.T) {
	in := relation.NewBuilder("x string", "v int").
		Row(0, 5, "a", 1).
		Row(5, 9, "b", 2).
		MustBuild()
	f := NewFilter(NewScan(in), expr.Gt(expr.ColIdx{Idx: 1, Typ: value.KindInt}, expr.Int(1)))
	pr, err := NewProject(f, []string{"double"}, []expr.Expr{
		expr.Mul(expr.ColIdx{Idx: 1, Typ: value.KindInt}, expr.Int(2)),
	})
	if err != nil {
		t.Fatalf("project: %v", err)
	}
	out, err := Collect(pr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 1 || out.Tuples[0].Vals[0].Int() != 4 || out.Tuples[0].T.Ts != 5 {
		t.Fatalf("filter+project wrong: %s", out)
	}
}

func TestProjectTFromExprDropsEmpty(t *testing.T) {
	in := relation.NewBuilder("a int", "b int").
		Row(0, 1, 3, 7).
		Row(0, 1, 7, 3). // inverted period: dropped
		MustBuild()
	pr, err := NewProject(NewScan(in), []string{"a"}, []expr.Expr{expr.ColIdx{Idx: 0, Typ: value.KindInt}})
	if err != nil {
		t.Fatalf("project: %v", err)
	}
	pr.TMode = TFromExpr
	pr.TExpr = expr.Call("PERIOD", expr.ColIdx{Idx: 0, Typ: value.KindInt}, expr.ColIdx{Idx: 1, Typ: value.KindInt})
	out, err := Collect(pr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 1 || out.Tuples[0].T != (interval.Interval{Ts: 3, Te: 7}) {
		t.Fatalf("TFromExpr wrong: %s", out)
	}
}
