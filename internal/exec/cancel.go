package exec

import (
	"context"
	"sync/atomic"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// cancelObserved counts, process-wide, how many times an operator's batch
// loop observed a cancelled context and aborted. It exists as operator
// instrumentation: tests and the server's /metrics endpoint use it to
// prove that a cancelled context really stopped the executor cooperatively
// rather than the query running to completion and the result being thrown
// away.
var cancelObserved atomic.Uint64

// CancelObserved reports how many operator-level cancellation aborts have
// happened process-wide since start.
func CancelObserved() uint64 { return cancelObserved.Load() }

// Cancel is a transparent iterator wrapper that makes its subtree
// context-aware: every Open and Next first checks ctx and aborts with the
// context's error once it is cancelled or past its deadline. The plan
// layer wraps every operator a Build produces with one (when the execution
// carries a context), which turns the whole executor tree — including the
// fragment operators driven by exchange worker goroutines and the
// producer side of a Splitter — into a cooperative cancellation lattice:
// no operator runs more than one batch beyond the cancellation point.
type Cancel struct {
	// Input is the wrapped operator.
	Input Iterator

	ctx     context.Context
	tripped bool
}

// WithCancel wraps in with a cooperative cancellation check against ctx.
// A nil context, or one that can never be cancelled (no Done channel),
// returns in unchanged so executions without a context pay nothing.
func WithCancel(ctx context.Context, in Iterator) Iterator {
	if ctx == nil || ctx.Done() == nil {
		return in
	}
	return &Cancel{Input: in, ctx: ctx}
}

func (c *Cancel) Schema() schema.Schema { return c.Input.Schema() }

func (c *Cancel) Open() error {
	if err := c.check(); err != nil {
		return err
	}
	return c.Input.Open()
}

func (c *Cancel) Next() ([]tuple.Tuple, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	return c.Input.Next()
}

func (c *Cancel) Close() error { return c.Input.Close() }

// check returns the context's error once it is done, counting the first
// observation into the process-wide instrumentation counter.
func (c *Cancel) check() error {
	if err := c.ctx.Err(); err != nil {
		if !c.tripped {
			c.tripped = true
			cancelObserved.Add(1)
		}
		return err
	}
	return nil
}
