package exec

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"talign/internal/faultinject"
	"talign/internal/schema"
	"talign/internal/tuple"
)

// panicsRecovered counts, process-wide, how many panics the executor's
// recovery boundaries have converted into errors instead of letting them
// kill the process. Tests and /metrics read it to prove crash isolation.
var panicsRecovered atomic.Uint64

// PanicsRecovered reports how many executor panics have been recovered
// process-wide since start.
func PanicsRecovered() uint64 { return panicsRecovered.Load() }

// PanicError is a recovered operator panic, rendered as a structured
// runtime error: the query that contained it fails with the wire code
// "internal", the process — and every concurrent query — keeps running.
// The stack is captured at recovery time for server-side diagnostics.
type PanicError struct {
	// Site names where the panic was recovered (an operator type or a
	// goroutine boundary).
	Site string
	// Val is the recovered panic value.
	Val any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: internal error: panic in %s: %v", e.Site, e.Val)
}

// Recovered converts a recover() result into a *PanicError; a nil r
// (no panic in flight) returns nil. Every conversion counts into the
// process-wide PanicsRecovered instrumentation.
func Recovered(site string, r any) error {
	if r == nil {
		return nil
	}
	panicsRecovered.Add(1)
	return &PanicError{Site: site, Val: r, Stack: debug.Stack()}
}

// RecoverAsError is the defer helper for goroutine and call boundaries:
//
//	defer exec.RecoverAsError("site", &err)
//
// converts an in-flight panic into a *PanicError assigned to *errp
// (existing errors are not overwritten by a nil recovery).
func RecoverAsError(site string, errp *error) {
	if err := Recovered(site, recover()); err != nil {
		*errp = err
	}
}

// Guard is the per-operator resilience boundary the plan layer wraps
// around every operator a Build produces. One wrapper does three jobs,
// all at batch granularity so steady-state cost is amortized over
// BatchSize tuples:
//
//   - panic isolation: a panic in the wrapped operator (or anything
//     beneath it on the same goroutine, including a columnar subtree
//     under a Materialize) is recovered and converted into a structured
//     *PanicError, so a poisoned expression or a corrupted batch tears
//     down the query, not the process;
//   - cooperative cancellation: once the execution's context is
//     cancelled or past its deadline, Open/Next abort with the context
//     error (counted once per guard into CancelObserved);
//   - resource budgeting: every output batch is charged against the
//     execution's shared Budget, and an exhausted budget aborts with a
//     structured *BudgetError.
//
// Exchange worker and splitter producer goroutines carry their own
// recovery (they are separate stacks); together with Guard that makes
// every goroutine a query can run on panic-isolated.
type Guard struct {
	// Input is the wrapped operator.
	Input Iterator

	ctx     context.Context
	budget  *Budget
	tripped bool
}

// NewGuard wraps in with the panic/cancellation/budget boundary. A nil
// (or never-cancellable) ctx skips the cancellation check; a nil budget
// skips charging; panic recovery is unconditional.
func NewGuard(ctx context.Context, budget *Budget, in Iterator) Iterator {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	return &Guard{Input: in, ctx: ctx, budget: budget}
}

// Schema implements Iterator.
func (g *Guard) Schema() schema.Schema { return g.Input.Schema() }

// Open implements Iterator.
func (g *Guard) Open() (err error) {
	defer func() {
		if rerr := Recovered(g.site(), recover()); rerr != nil {
			err = rerr
		}
	}()
	if err := g.check(); err != nil {
		return err
	}
	if err := faultinject.Hit("exec.open"); err != nil {
		return err
	}
	return g.Input.Open()
}

// Next implements Iterator.
func (g *Guard) Next() (batch []tuple.Tuple, err error) {
	defer func() {
		if rerr := Recovered(g.site(), recover()); rerr != nil {
			batch, err = nil, rerr
		}
	}()
	if err := g.check(); err != nil {
		return nil, err
	}
	if err := faultinject.Hit("exec.next"); err != nil {
		return nil, err
	}
	b, err := g.Input.Next()
	if err != nil {
		return nil, err
	}
	if err := g.budget.charge(b); err != nil {
		return nil, err
	}
	return b, nil
}

// Close implements Iterator; teardown of an operator a panic left in a
// broken state must not panic the unwinding query a second time.
func (g *Guard) Close() (err error) {
	defer func() {
		if rerr := Recovered(g.site(), recover()); rerr != nil {
			err = rerr
		}
	}()
	return g.Input.Close()
}

// site names the guarded operator for panic diagnostics.
func (g *Guard) site() string { return fmt.Sprintf("%T", g.Input) }

// check returns the context's error once it is done, counting the first
// observation into the process-wide instrumentation counter.
func (g *Guard) check() error {
	if g.ctx == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		if !g.tripped {
			g.tripped = true
			cancelObserved.Add(1)
		}
		return err
	}
	return nil
}
