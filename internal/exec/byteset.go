package exec

import (
	"bytes"
	"hash/maphash"
)

// byteSet is a set of encoded byte keys with amortized O(1) insert and
// membership and no per-key allocations: keys live concatenated in one
// arena, hash collisions chain through a flat next slice, and the map
// carries only uint64 → int32 heads. It replaces map[string]struct{}
// tables whose string conversion allocates once per distinct key.
type byteSet struct {
	seed  maphash.Seed
	table map[uint64]int32 // hash → index+1 of the chain head
	next  []int32          // next[i] = index+1 of the next key with the same hash
	offs  []int32          // key i = arena[offs[i]:offs[i+1]]
	arena []byte
}

func newByteSet(sizeHint int) *byteSet {
	return &byteSet{
		seed:  maphash.MakeSeed(),
		table: make(map[uint64]int32, sizeHint),
	}
}

func (s *byteSet) keyAt(i int32) []byte {
	end := int32(len(s.arena))
	if int(i+1) < len(s.offs) {
		end = s.offs[i+1]
	}
	return s.arena[s.offs[i]:end]
}

func (s *byteSet) find(h uint64, key []byte) bool {
	for j := s.table[h]; j != 0; j = s.next[j-1] {
		if bytes.Equal(s.keyAt(j-1), key) {
			return true
		}
	}
	return false
}

// contains reports membership without inserting.
func (s *byteSet) contains(key []byte) bool {
	return s.find(maphash.Bytes(s.seed, key), key)
}

// insert adds key if absent and reports whether it was added.
func (s *byteSet) insert(key []byte) bool {
	h := maphash.Bytes(s.seed, key)
	if s.find(h, key) {
		return false
	}
	s.offs = append(s.offs, int32(len(s.arena)))
	s.arena = append(s.arena, key...)
	s.next = append(s.next, s.table[h])
	s.table[h] = int32(len(s.offs)) // index+1
	return true
}
