// ColSplitter: the columnar partitioning half of the exchange pair. Same
// lifecycle as the row Splitter (single-use partitions, shared producer
// goroutine, last-close shutdown) but rows are routed straight from the
// vectors — the partition of a row is the hash of its encoded key bytes,
// so no tuple is ever materialized on the way into a fragment.
//
// Hash scheme: the row Splitter hashes via value.Hash, the columnar one
// via maphash.Bytes over order-preserving key encodings. Both send equal
// keys to equal partitions under a shared seed, but the two schemes are
// not interchangeable — co-partitioned inputs must either all use row
// splitters or all use columnar ones. The planner enforces this
// (ExchangeNode goes columnar only when every source does).
package exec

import (
	"fmt"
	"hash/maphash"
	"sync"

	"talign/internal/colbatch"
	"talign/internal/expr"
	"talign/internal/faultinject"
	"talign/internal/schema"
)

// ColSplitter routes a columnar stream into dop partition streams.
type ColSplitter struct {
	batching
	input ColIterator
	keys  []colVal // nil = hash the whole row (values + valid time)
	dop   int
	seed  maphash.Seed

	launch     sync.Once
	stop       sync.Once
	chans      []chan *colbatch.Batch
	done       chan struct{}
	finished   chan struct{}
	mu         sync.Mutex
	err        error
	launched   bool
	unreleased int
}

// NewColSplitter builds a columnar splitter; ok=false when a key
// expression is not a plain column/valid-time reference. Callers
// co-partitioning several inputs must pass the same seed to every
// splitter of the group, and must not mix row and columnar splitters.
func NewColSplitter(input ColIterator, keys []expr.Expr, dop int, seed maphash.Seed) (*ColSplitter, bool, error) {
	if dop < 1 {
		return nil, false, fmt.Errorf("exec: splitter needs dop >= 1, got %d", dop)
	}
	s := &ColSplitter{
		input:      input,
		dop:        dop,
		seed:       seed,
		chans:      make([]chan *colbatch.Batch, dop),
		done:       make(chan struct{}),
		finished:   make(chan struct{}),
		unreleased: dop,
	}
	for _, k := range keys {
		kv, ok := compileOperand(k)
		if !ok {
			return nil, false, nil
		}
		s.keys = append(s.keys, kv)
	}
	for i := range s.chans {
		s.chans[i] = make(chan *colbatch.Batch, chanDepth)
	}
	return s, true, nil
}

// Partition returns the columnar iterator for partition i.
func (s *ColSplitter) Partition(i int) ColIterator { return &colPartition{s: s, idx: i} }

func (s *ColSplitter) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *ColSplitter) getErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// run is the producer: it drains the input once and routes rows. Routed
// batches are freshly allocated per send; the consumer owns them. Like
// the row producer, a panic anywhere in the input subtree becomes the
// splitter's error — consumers observe it when the channels close.
func (s *ColSplitter) run() {
	defer close(s.finished)
	defer func() {
		for _, ch := range s.chans {
			close(ch)
		}
	}()
	defer func() {
		if err := Recovered("exec.ColSplitter producer", recover()); err != nil {
			s.setErr(err)
		}
	}()
	if err := s.input.Open(); err != nil {
		s.setErr(err)
		return
	}
	defer s.input.Close()
	n := s.batchCap()
	sch := s.input.Schema()
	bufs := make([]*colbatch.Batch, s.dop)
	for i := range bufs {
		bufs[i] = colbatch.New(sch)
	}
	var keyBuf []byte
	for {
		if err := faultinject.Hit("exec.colsplitter.run"); err != nil {
			s.setErr(err)
			return
		}
		b, err := s.input.NextCol()
		if err != nil {
			s.setErr(err)
			return
		}
		if b == nil {
			break
		}
		for i, nsel := 0, b.NumRows(); i < nsel; i++ {
			row := b.RowAt(i)
			if s.keys == nil {
				keyBuf = b.AppendRowKey(keyBuf[:0], row)
			} else {
				keyBuf = keyBuf[:0]
				for _, kv := range s.keys {
					keyBuf = kv(b, row).AppendKey(keyBuf)
				}
			}
			p := int(maphash.Bytes(s.seed, keyBuf) % uint64(s.dop))
			bufs[p].AppendFrom(b, row, b.TS[row], b.TE[row])
			if bufs[p].Len() >= n {
				if !s.send(p, bufs[p]) {
					return
				}
				bufs[p] = colbatch.New(sch)
			}
		}
	}
	for p, buf := range bufs {
		if buf.Len() > 0 && !s.send(p, buf) {
			return
		}
	}
}

func (s *ColSplitter) send(p int, b *colbatch.Batch) bool {
	select {
	case s.chans[p] <- b:
		return true
	case <-s.done:
		return false
	}
}

// release mirrors Splitter.release: the last partition Close shuts the
// producer down, or unwinds in its place if it never launched.
func (s *ColSplitter) release() {
	s.mu.Lock()
	s.unreleased--
	last := s.unreleased <= 0
	s.mu.Unlock()
	if !last {
		return
	}
	s.stop.Do(func() { close(s.done) })
	s.launch.Do(func() {})
	s.mu.Lock()
	launched := s.launched
	s.mu.Unlock()
	if launched {
		<-s.finished
		return
	}
	for _, ch := range s.chans {
		close(ch)
	}
	s.input.Close()
}

// colPartition is one output stream of a ColSplitter.
type colPartition struct {
	s      *ColSplitter
	idx    int
	closed bool
}

func (p *colPartition) Schema() schema.Schema { return p.s.input.Schema() }

func (p *colPartition) Open() error {
	p.s.launch.Do(func() {
		p.s.mu.Lock()
		p.s.launched = true
		p.s.mu.Unlock()
		go p.s.run()
	})
	return nil
}

func (p *colPartition) NextCol() (*colbatch.Batch, error) {
	b, ok := <-p.s.chans[p.idx]
	if !ok {
		return nil, p.s.getErr()
	}
	return b, nil
}

func (p *colPartition) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	go func() {
		for range p.s.chans[p.idx] {
		}
	}()
	p.s.release()
	return nil
}
