package exec

import (
	"bytes"
	"hash/maphash"
	"math/rand"
	"testing"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// colTestRel builds a small random int relation (k, v) with occasional ω
// and float-mixed values, timestamps in [0, 100).
func colTestRel(r *rand.Rand, n int, mixed bool) *relation.Relation {
	s := schema.MustNew(
		schema.Attr{Name: "k", Type: value.KindInt},
		schema.Attr{Name: "v", Type: value.KindInt},
	)
	rel := relation.New(s)
	for i := 0; i < n; i++ {
		k := value.Value(value.NewInt(r.Int63n(8)))
		v := value.Value(value.NewInt(r.Int63n(50)))
		if r.Intn(10) == 0 {
			k = value.Null
		}
		if mixed && r.Intn(7) == 0 {
			v = value.NewFloat(float64(r.Int63n(50)))
		}
		ts := r.Int63n(90)
		rel.MustAppend(tuple.New(interval.New(ts, ts+1+r.Int63n(10)), k, v))
	}
	return rel
}

// sortedKeys canonicalizes a row set for byte-equal comparison.
func sortedKeys(t *testing.T, rows []tuple.Tuple) [][]byte {
	t.Helper()
	keys := make([][]byte, len(rows))
	for i := range rows {
		keys[i] = rows[i].AppendKey(nil)
	}
	tuple.KeySort(rows, keys)
	return keys
}

// assertSameRows fails unless the two row sets are byte-equal after
// canonical sorting.
func assertSameRows(t *testing.T, got, want []tuple.Tuple) {
	t.Helper()
	gk, wk := sortedKeys(t, got), sortedKeys(t, want)
	if len(gk) != len(wk) {
		t.Fatalf("row count %d, want %d", len(gk), len(wk))
	}
	for i := range gk {
		if !bytes.Equal(gk[i], wk[i]) {
			t.Fatalf("row %d differs:\n got %v\nwant %v", i, got[i], want[i])
		}
	}
}

func collectRows(t *testing.T, it Iterator) []tuple.Tuple {
	t.Helper()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	rows, err := drainAppend(nil, it)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestColScanMaterializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	rel := colTestRel(r, 300, true)
	scan := NewColScan(rel)
	scan.SetBatchSize(64)
	got := collectRows(t, NewMaterialize(scan))
	assertSameRows(t, got, append([]tuple.Tuple(nil), rel.Tuples...))
}

func TestColFilterMatchesRowFilter(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rel := colTestRel(r, 500, true)
	ci := func(i int) expr.Expr { return expr.ColIdx{Idx: i, Typ: value.KindInt} }
	preds := []expr.Expr{
		expr.Le(ci(0), expr.Int(4)),                                         // int kernel
		expr.Gt(expr.Int(3), ci(0)),                                         // flipped kernel
		expr.Ne(ci(1), expr.Int(7)),                                         // mixed column: kernel bails per batch
		expr.And(expr.Ge(ci(0), expr.Int(2)), expr.Lt(ci(1), expr.Int(30))), // row closure
		expr.Or(expr.IsNull{X: ci(0)}, expr.Eq(ci(0), expr.Int(1))),
		expr.Neg(expr.Le(ci(0), expr.Int(3))), // NOT over ω must stay ω (dropped)
		expr.Between{X: ci(1), Lo: expr.Int(10), Hi: expr.Int(20)},
		expr.Le(expr.TStart{}, expr.Int(40)), // time kernel
		expr.Gt(expr.TEnd{}, expr.Int(60)),
	}
	for pi, pred := range preds {
		cf, ok := NewColFilter(NewColScan(rel), pred)
		if !ok {
			t.Fatalf("pred %d did not compile", pi)
		}
		got := collectRows(t, NewMaterialize(cf))
		want := collectRows(t, NewFilter(NewScan(rel), pred))
		assertSameRows(t, got, want)
	}
}

// TestColFilterZeroMatchFirstBatch pins the nil-vs-empty selection
// distinction: when the very first batch matches nothing, the filter
// must emit a non-nil empty selection — a nil Sel means "all rows" and
// would leak the entire batch.
func TestColFilterZeroMatchFirstBatch(t *testing.T) {
	s := schema.MustNew(schema.Attr{Name: "v", Type: value.KindInt})
	rel := relation.New(s)
	rel.MustAppend(tuple.New(interval.New(7, 8), value.NewInt(0)))
	for _, pred := range []expr.Expr{
		expr.Ge(expr.ColIdx{Idx: 0, Typ: value.KindInt}, expr.Int(1)), // kernel path
		expr.And(expr.Ge(expr.ColIdx{Idx: 0, Typ: value.KindInt}, expr.Int(1)),
			expr.Le(expr.ColIdx{Idx: 0, Typ: value.KindInt}, expr.Int(5))), // row-closure path
	} {
		cf, ok := NewColFilter(NewColScan(rel), pred)
		if !ok {
			t.Fatal("pred did not compile")
		}
		if got := collectRows(t, NewMaterialize(cf)); len(got) != 0 {
			t.Fatalf("zero-match filter leaked %d rows: %v", len(got), got)
		}
	}
}

func TestColProjectMatchesRowProject(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	rel := colTestRel(r, 200, true)
	exprs := []expr.Expr{
		expr.ColIdx{Idx: 1, Typ: value.KindInt, Name: "v"},
		expr.ColIdx{Idx: 0, Typ: value.KindInt, Name: "k"},
		expr.TStart{},
		expr.TEnd{},
	}
	names := []string{"v", "k", "ts", "te"}
	// TFromExpr recomputes T from PERIOD over int columns; the nullable
	// column 0 exercises the ω drop and k >= v the empty-period drop.
	// The mixed relation demotes column 1, so TFromExpr runs on a flat
	// one (both paths panic identically on non-int bounds).
	flatRel := colTestRel(rand.New(rand.NewSource(21)), 200, false)
	texprs := map[TPolicy]expr.Expr{
		TFromExpr: expr.Call("PERIOD",
			expr.ColIdx{Idx: 0, Typ: value.KindInt, Name: "k"},
			expr.ColIdx{Idx: 1, Typ: value.KindInt, Name: "v"}),
	}
	for _, tmode := range []TPolicy{TKeep, TZero, TFromExpr} {
		src := rel
		if tmode == TFromExpr {
			src = flatRel
		}
		rp, err := NewProject(NewScan(src), names, exprs)
		if err != nil {
			t.Fatal(err)
		}
		rp.TMode = tmode
		rp.TExpr = texprs[tmode]
		want := collectRows(t, rp)

		cp, ok := NewColProject(NewColScan(src), exprs, rp.Out, tmode, texprs[tmode])
		if !ok {
			t.Fatal("projection did not compile")
		}
		got := collectRows(t, NewMaterialize(cp))
		assertSameRows(t, got, want)
	}
}

// TestColLimitCountsSelectedRows is the regression test for OFFSET over
// selection vectors: the limit must count surviving (selected) rows, not
// physical batch rows.
func TestColLimitCountsSelectedRows(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rel := colTestRel(r, 400, false)
	pred := expr.Le(expr.ColIdx{Idx: 0, Typ: value.KindInt}, expr.Int(3))
	for _, tc := range []struct{ n, off int64 }{
		{10, 0}, {10, 5}, {-1, 7}, {0, 3}, {5, 1000}, {1000, 2},
	} {
		rowLim, err := NewLimit(NewFilter(NewScan(rel), pred), tc.n, tc.off)
		if err != nil {
			t.Fatal(err)
		}
		want := collectRows(t, rowLim)

		cf, ok := NewColFilter(NewColScan(rel), pred)
		if !ok {
			t.Fatal("pred did not compile")
		}
		got := collectRows(t, NewMaterialize(NewColLimit(cf, tc.n, tc.off)))
		// LIMIT output is prefix-dependent; both paths stream in scan
		// order, so rows must match exactly, not just as sets.
		if len(got) != len(want) {
			t.Fatalf("n=%d off=%d: got %d rows, want %d", tc.n, tc.off, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("n=%d off=%d row %d: %v != %v", tc.n, tc.off, i, got[i], want[i])
			}
		}
	}
}

func TestColFusedAdjustMatchesRow(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	keys := []expr.EquiPair{{
		Left:  expr.ColIdx{Idx: 0, Typ: value.KindInt},
		Right: expr.ColIdx{Idx: 0, Typ: value.KindInt},
	}}
	for trial := 0; trial < 10; trial++ {
		for _, mode := range []AdjustMode{ModeAlign, ModeGaps, ModeNormalize} {
			// Normalize splits on column v, whose values must be ints
			// (Value.Int panics on floats in both paths); the align modes
			// get mixed int/float columns to exercise demotion.
			mixed := mode != ModeNormalize
			left := colTestRel(r, 120, mixed).Dedup()
			right := colTestRel(r, 150, mixed)
			pCol := -1
			if mode == ModeNormalize {
				pCol = 1
			}
			for _, strat := range []GroupStrategy{GroupHash, GroupNestLoop} {
				kset := keys
				if strat == GroupNestLoop && trial%2 == 0 {
					kset = nil // keyless nested loop
				}
				rowOp, err := NewFusedAdjust(NewScan(left), NewScan(right), mode, strat, kset, nil, pCol)
				if err != nil {
					t.Fatal(err)
				}
				want := collectRows(t, rowOp)

				colOp, ok := NewColFusedAdjust(NewColScan(left), NewColScan(right), mode, strat, kset, pCol)
				if !ok {
					t.Fatalf("mode %v strat %v did not compile", mode, strat)
				}
				got := collectRows(t, NewMaterialize(colOp))
				assertSameRows(t, got, want)
			}
		}
	}
}

func TestColFusedAdjustNormalizePanicsOnNonInt(t *testing.T) {
	// A string split point must panic exactly like the row operator's
	// pv.Int() — not silently coerce.
	s := schema.MustNew(schema.Attr{Name: "p", Type: value.KindString})
	right := relation.New(s)
	right.MustAppend(tuple.New(interval.New(0, 10), value.NewString("x")))
	left := relation.New(s)
	left.MustAppend(tuple.New(interval.New(0, 10), value.NewString("x")))

	colOp, ok := NewColFusedAdjust(NewColScan(left), NewColScan(right), ModeNormalize, GroupNestLoop, nil, 0)
	if !ok {
		t.Fatal("did not compile")
	}
	m := NewMaterialize(colOp)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-int split point")
		}
	}()
	_, _ = m.Next()
}

func TestColSetOpUnionMatchesRow(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 5; trial++ {
		l := colTestRel(r, 200, true)
		rr := colTestRel(r, 200, true)
		rowOp, err := NewSetOp(NewScan(l), NewScan(rr), UnionOp)
		if err != nil {
			t.Fatal(err)
		}
		want := collectRows(t, rowOp)

		colOp, err := NewColSetOp(NewColScan(l), NewColScan(rr))
		if err != nil {
			t.Fatal(err)
		}
		got := collectRows(t, NewMaterialize(colOp))
		assertSameRows(t, got, want)
	}
}

// TestColSplitterPartitions checks that the columnar splitter preserves
// the row multiset across partitions and co-partitions equal keys under
// a shared seed (including int/float key equality).
func TestColSplitterPartitions(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	rel := colTestRel(r, 500, true)
	const dop = 4
	seed := maphash.MakeSeed()
	keys := []expr.Expr{expr.ColIdx{Idx: 1, Typ: value.KindInt}}

	mk := func() *ColSplitter {
		sp, ok, err := NewColSplitter(NewColScan(rel), keys, dop, seed)
		if err != nil || !ok {
			t.Fatalf("splitter: ok=%v err=%v", ok, err)
		}
		return sp
	}
	spA, spB := mk(), mk()
	var all []tuple.Tuple
	partOf := map[string]int{} // encoded key -> partition (run A)
	for i := 0; i < dop; i++ {
		rows := collectRows(t, NewMaterialize(spA.Partition(i)))
		for _, tp := range rows {
			partOf[string(tp.Vals[1].AppendKey(nil))] = i
		}
		all = append(all, rows...)
	}
	assertSameRows(t, all, append([]tuple.Tuple(nil), rel.Tuples...))
	// Run B (fresh splitter, same seed) must agree on every key's home.
	for i := 0; i < dop; i++ {
		rows := collectRows(t, NewMaterialize(spB.Partition(i)))
		for _, tp := range rows {
			if want, okk := partOf[string(tp.Vals[1].AppendKey(nil))]; okk && want != i {
				t.Fatalf("key %v routed to partition %d, expected %d", tp.Vals[1], i, want)
			}
		}
	}
}

func TestToColRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	rel := colTestRel(r, 150, true)
	got := collectRows(t, NewMaterialize(NewToCol(NewScan(rel))))
	assertSameRows(t, got, append([]tuple.Tuple(nil), rel.Tuples...))
}
