package exec

import (
	"fmt"

	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// MergeJoin is a sort-merge equi-join. Both inputs MUST already be sorted
// ascending on the respective key expressions (the planner inserts Sort
// nodes). It supports inner, left outer, right outer, full outer, semi and
// anti joins with an optional residual condition; ω keys never match.
type MergeJoin struct {
	batching
	Left, Right Iterator
	Keys        []expr.EquiPair
	Residual    expr.Expr
	Type        JoinType
	MatchT      bool

	core joinCore
	out  schema.Schema

	lc       cursor
	rc       cursor
	l        tuple.Tuple
	lKey     []value.Value
	lOK      bool
	lDone    bool
	group    []mergeRow // current right-side key group
	gKey     []value.Value
	gValid   bool
	gPos     int
	lMatched bool
	rNext    tuple.Tuple
	rKey     []value.Value
	rOK      bool
	rDone    bool
	// queue holds unmatched right rows of finished groups (for right/full
	// outer).
	queue []tuple.Tuple
	qPos  int
	env   expr.Env // reused eval scratch
	done  bool
}

type mergeRow struct {
	t       tuple.Tuple
	matched bool
}

// NewMergeJoin constructs the node; see type comment for preconditions.
func NewMergeJoin(l, r Iterator, keys []expr.EquiPair, residual expr.Expr, typ JoinType, matchT bool) (*MergeJoin, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: merge join requires at least one equi key")
	}
	m := &MergeJoin{Left: l, Right: r, Keys: keys, Residual: residual, Type: typ, MatchT: matchT}
	m.core = joinCore{typ: typ, lWidth: l.Schema().Len(), rWidth: r.Schema().Len(), matchT: matchT}
	if typ.projectsLeftOnly() {
		m.out = l.Schema()
	} else {
		m.out = l.Schema().Concat(r.Schema())
	}
	return m, nil
}

func (m *MergeJoin) Schema() schema.Schema { return m.out }

func (m *MergeJoin) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lc.init(m.Left)
	m.rc.init(m.Right)
	m.lOK, m.lDone = false, false
	m.rOK, m.rDone = false, false
	m.gValid = false
	m.group = nil
	m.queue = nil
	m.qPos = 0
	m.done = false
	if err := m.advanceLeft(); err != nil {
		return err
	}
	return m.advanceRightRaw()
}

// evalKeys evaluates one side's key expressions into the reused dst
// buffer (no per-row allocation).
func (m *MergeJoin) evalKeys(t tuple.Tuple, left bool, dst []value.Value) ([]value.Value, error) {
	m.env = expr.Env{Vals: t.Vals, T: t.T}
	dst = dst[:0]
	for _, k := range m.Keys {
		e := k.Right
		if left {
			e = k.Left
		}
		v, err := e.Eval(&m.env)
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

func (m *MergeJoin) advanceLeft() error {
	t, ok, err := m.lc.next()
	if err != nil {
		return err
	}
	if !ok {
		m.lOK = false
		m.lDone = true
		return nil
	}
	key, err := m.evalKeys(t, true, m.lKey)
	if err != nil {
		return err
	}
	m.l, m.lKey, m.lOK = t, key, true
	m.lMatched = false
	m.gPos = 0
	return nil
}

func (m *MergeJoin) advanceRightRaw() error {
	t, ok, err := m.rc.next()
	if err != nil {
		return err
	}
	if !ok {
		m.rOK = false
		m.rDone = true
		return nil
	}
	key, err := m.evalKeys(t, false, m.rKey)
	if err != nil {
		return err
	}
	m.rNext, m.rKey, m.rOK = t, key, true
	return nil
}

// loadGroup pulls the full run of right tuples sharing m.rNext's key.
func (m *MergeJoin) loadGroup() error {
	m.group = m.group[:0]
	// Copy: m.rKey's buffer is overwritten by the advances below.
	m.gKey = append(m.gKey[:0], m.rKey...)
	for m.rOK && compareKeys(m.rKey, m.gKey) == 0 {
		m.group = append(m.group, mergeRow{t: m.rNext})
		if err := m.advanceRightRaw(); err != nil {
			return err
		}
	}
	m.gValid = true
	return nil
}

// flushGroup queues unmatched right rows of the current group and drops it.
func (m *MergeJoin) flushGroup() {
	if m.gValid && (m.Type == RightOuterJoin || m.Type == FullOuterJoin) {
		for _, row := range m.group {
			if !row.matched {
				m.queue = append(m.queue, row.t)
			}
		}
	}
	m.gValid = false
}

func compareKeys(a, b []value.Value) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func keyHasNull(k []value.Value) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}

func (m *MergeJoin) Next() ([]tuple.Tuple, error) {
	m.resetOut()
	target := m.batchCap()
	for len(m.outBuf) < target && !m.done {
		// Drain queued unmatched right rows first.
		if m.qPos < len(m.queue) {
			for m.qPos < len(m.queue) && len(m.outBuf) < target {
				m.outBuf = append(m.outBuf, m.core.padLeft(m.queue[m.qPos]))
				m.qPos++
			}
			continue
		}
		m.queue = m.queue[:0]
		m.qPos = 0

		if m.lDone {
			// Flush remaining right side for right/full outer.
			if m.gValid {
				m.flushGroup()
				continue
			}
			if m.rOK {
				if m.Type == RightOuterJoin || m.Type == FullOuterJoin {
					t := m.rNext
					if err := m.advanceRightRaw(); err != nil {
						return nil, err
					}
					m.outBuf = append(m.outBuf, m.core.padLeft(t))
					continue
				}
				m.rOK = false
				m.rDone = true
			}
			m.done = true
			continue
		}

		// ω keys on the left never match.
		if keyHasNull(m.lKey) {
			t := m.l
			if err := m.advanceLeft(); err != nil {
				return nil, err
			}
			switch m.Type {
			case LeftOuterJoin, FullOuterJoin:
				m.outBuf = append(m.outBuf, m.core.padRight(t))
			case AntiJoin:
				m.outBuf = append(m.outBuf, t)
			}
			continue
		}

		// Ensure a current right group positioned at or after the left key.
		if !m.gValid {
			// Skip right rows with ω keys (they can never match).
			for m.rOK && keyHasNull(m.rKey) {
				t := m.rNext
				if err := m.advanceRightRaw(); err != nil {
					return nil, err
				}
				if m.Type == RightOuterJoin || m.Type == FullOuterJoin {
					m.outBuf = append(m.outBuf, m.core.padLeft(t))
					if len(m.outBuf) >= target {
						// Resume the ω-skip on the next call.
						return m.outBuf, nil
					}
				}
			}
			if m.rOK {
				if err := m.loadGroup(); err != nil {
					return nil, err
				}
				m.gPos = 0
			}
		}

		if !m.gValid {
			// Right side exhausted: remaining lefts are unmatched.
			t := m.l
			if err := m.advanceLeft(); err != nil {
				return nil, err
			}
			switch m.Type {
			case LeftOuterJoin, FullOuterJoin:
				m.outBuf = append(m.outBuf, m.core.padRight(t))
			case AntiJoin:
				m.outBuf = append(m.outBuf, t)
			}
			continue
		}

		c := compareKeys(m.lKey, m.gKey)
		switch {
		case c < 0:
			// Left key before group: left is unmatched.
			t, matched := m.l, m.lMatched
			if err := m.advanceLeft(); err != nil {
				return nil, err
			}
			if !matched {
				switch m.Type {
				case LeftOuterJoin, FullOuterJoin:
					m.outBuf = append(m.outBuf, m.core.padRight(t))
				case AntiJoin:
					m.outBuf = append(m.outBuf, t)
				}
			}
		case c > 0:
			// Group before left key: finish it.
			m.flushGroup()
		default:
			// Same key: probe remaining group rows for this left tuple.
			semiEmitted := false
			for m.gPos < len(m.group) {
				row := &m.group[m.gPos]
				m.gPos++
				ok, err := m.core.matches(m.Residual, m.l, row.t)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				m.lMatched = true
				row.matched = true
				if m.Type == SemiJoin {
					// Emit and advance: the next left tuple starts probing
					// the group from the top (advanceLeft reset gPos).
					t := m.l
					if err := m.advanceLeft(); err != nil {
						return nil, err
					}
					m.outBuf = append(m.outBuf, t)
					semiEmitted = true
					break
				}
				if m.Type == AntiJoin {
					// disqualified; skip the rest of the group
					m.gPos = len(m.group)
					continue
				}
				m.outBuf = append(m.outBuf, m.core.combine(m.l, row.t))
				if len(m.outBuf) >= target {
					// Batch full mid-group: gPos persists, the next call
					// resumes probing for the same left tuple.
					return m.outBuf, nil
				}
			}
			if semiEmitted {
				continue
			}
			// Group exhausted for this left tuple.
			t, matched := m.l, m.lMatched
			if err := m.advanceLeft(); err != nil {
				return nil, err
			}
			if !matched {
				switch m.Type {
				case LeftOuterJoin, FullOuterJoin:
					m.outBuf = append(m.outBuf, m.core.padRight(t))
				case AntiJoin:
					m.outBuf = append(m.outBuf, t)
				}
			}
		}
	}
	return m.outBuf, nil
}

func (m *MergeJoin) Close() error {
	m.group = nil
	m.queue = nil
	err1 := m.Left.Close()
	err2 := m.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
