// ColProject: vectorized projection as column pointer shuffling. When
// every output expression is a plain column reference (or the tuple's own
// TS/TE, which project as int columns sharing the time arrays), building
// the output batch is a constant-time header assembly — no values move.
// Expression-computing projections stay on the row side.
package exec

import (
	"talign/internal/colbatch"
	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/value"
)

// colProjSrc encodes where output column i comes from: >= 0 is an input
// column index, srcTS/srcTE are the valid-time arrays.
const (
	srcTS = -1
	srcTE = -2
)

// ColProject projects a columnar stream by reassembling column headers.
type ColProject struct {
	Input ColIterator
	Out   schema.Schema

	srcs   []int // per output column: input index, srcTS or srcTE
	tzero  bool  // TZero: output carries no valid time
	tfrom  bool  // TFromExpr with a recognized PERIOD shape
	tsSrc  int   // PERIOD arg sources (column index, srcTS or srcTE)
	teSrc  int
	out    colbatch.Batch
	zeros  []int64
	tsBuf  []int64
	teBuf  []int64
	selBuf []int32
}

// periodTimeSrcs recognizes the TFromExpr shape the columnar projection
// supports: PERIOD(a, b) where each argument is an int column or the
// tuple's own TS/TE. Anything else stays on the row path.
func periodTimeSrcs(texpr expr.Expr) (ts, te int, ok bool) {
	f, okf := texpr.(expr.Func)
	if !okf || f.Name != "PERIOD" || len(f.Args) != 2 {
		return 0, 0, false
	}
	var s [2]int
	for i, a := range f.Args {
		switch n := a.(type) {
		case expr.ColIdx:
			if n.Typ != value.KindInt {
				return 0, 0, false
			}
			s[i] = n.Idx
		case expr.TStart:
			s[i] = srcTS
		case expr.TEnd:
			s[i] = srcTE
		default:
			return 0, 0, false
		}
	}
	return s[0], s[1], true
}

// ColProjectable reports whether a projection with these output
// expressions and time policy can run columnar: every expression a plain
// column/TS/TE reference, and for TFromExpr a PERIOD over int columns or
// TS/TE (texpr is ignored for the other policies).
func ColProjectable(exprs []expr.Expr, tmode TPolicy, texpr expr.Expr) bool {
	switch tmode {
	case TKeep, TZero:
	case TFromExpr:
		if _, _, ok := periodTimeSrcs(texpr); !ok {
			return false
		}
	default:
		return false
	}
	for _, e := range exprs {
		switch e.(type) {
		case expr.ColIdx, expr.TStart, expr.TEnd:
		default:
			return false
		}
	}
	return true
}

// NewColProject compiles the projection; ok=false when an expression is
// not a plain column/TS/TE reference or the time policy needs row-side
// evaluation (a TFromExpr other than the PERIOD shape above).
func NewColProject(in ColIterator, exprs []expr.Expr, out schema.Schema, tmode TPolicy, texpr expr.Expr) (*ColProject, bool) {
	p := &ColProject{Input: in, Out: out}
	switch tmode {
	case TKeep:
	case TZero:
		p.tzero = true
	case TFromExpr:
		ts, te, ok := periodTimeSrcs(texpr)
		if !ok {
			return nil, false
		}
		p.tfrom, p.tsSrc, p.teSrc = true, ts, te
	default:
		return nil, false
	}
	srcs := make([]int, 0, len(exprs))
	for _, e := range exprs {
		switch n := e.(type) {
		case expr.ColIdx:
			srcs = append(srcs, n.Idx)
		case expr.TStart:
			srcs = append(srcs, srcTS)
		case expr.TEnd:
			srcs = append(srcs, srcTE)
		default:
			return nil, false
		}
	}
	p.srcs = srcs
	return p, true
}

// Schema implements ColIterator.
func (p *ColProject) Schema() schema.Schema { return p.Out }

// Open implements ColIterator. In TFromExpr mode the selection buffer is
// pre-allocated: a nil selection means "all rows", so an all-dropped
// batch must carry a non-nil empty selection.
func (p *ColProject) Open() error {
	if p.tfrom && p.selBuf == nil {
		p.selBuf = make([]int32, 0, 16)
	}
	return p.Input.Open()
}

// NextCol implements ColIterator. The output batch shares all storage
// with the input batch; only the header (column list, time arrays,
// selection) is rewritten per call.
func (p *ColProject) NextCol() (*colbatch.Batch, error) {
	b, err := p.Input.NextCol()
	if err != nil || b == nil {
		return nil, err
	}
	o := &p.out
	o.Schema = p.Out
	o.Cols = o.Cols[:0]
	for _, s := range p.srcs {
		switch s {
		case srcTS:
			o.Cols = append(o.Cols, colbatch.IntVec(b.TS))
		case srcTE:
			o.Cols = append(o.Cols, colbatch.IntVec(b.TE))
		default:
			o.Cols = append(o.Cols, b.Cols[s])
		}
	}
	switch {
	case p.tfrom:
		// Recompute T per row, dropping rows whose PERIOD is ω or
		// empty — the exact row-Project TFromExpr semantics (PERIOD
		// returns ω when either bound is ω or ts >= te).
		n := b.Len()
		if cap(p.tsBuf) < n {
			p.tsBuf = make([]int64, n)
			p.teBuf = make([]int64, n)
		}
		p.tsBuf, p.teBuf = p.tsBuf[:n], p.teBuf[:n]
		out := p.selBuf[:0]
		for i, nsel := 0, b.NumRows(); i < nsel; i++ {
			row := b.RowAt(i)
			ts, ok1 := timeAt(b, p.tsSrc, row)
			te, ok2 := timeAt(b, p.teSrc, row)
			if !ok1 || !ok2 || ts >= te {
				continue
			}
			p.tsBuf[row], p.teBuf[row] = ts, te
			out = append(out, int32(row))
		}
		p.selBuf = out
		o.TS, o.TE = p.tsBuf, p.teBuf
		o.Sel = out
		o.SetLen(n)
		return o, nil
	case p.tzero:
		// Nontemporal result: zero intervals, like row Project's TZero.
		n := b.Len()
		for len(p.zeros) < n {
			p.zeros = append(p.zeros, 0)
		}
		o.TS, o.TE = p.zeros[:n], p.zeros[:n]
	default:
		o.TS, o.TE = b.TS, b.TE
	}
	o.Sel = b.Sel
	o.SetLen(b.Len())
	return o, nil
}

// timeAt reads one PERIOD bound of a physical row; ok=false means the
// bound is ω and the row must be dropped.
func timeAt(b *colbatch.Batch, src, row int) (int64, bool) {
	switch src {
	case srcTS:
		return b.TS[row], true
	case srcTE:
		return b.TE[row], true
	}
	vec := &b.Cols[src]
	if vec.IsNull(row) {
		return 0, false
	}
	return vec.Int(row), true
}

// Close implements ColIterator.
func (p *ColProject) Close() error { return p.Input.Close() }
