package exec

import (
	"fmt"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// AdjustMode selects between the two temporal primitives that share the
// plane-sweep executor function (Fig. 10): temporal alignment (Def. 11) and
// temporal normalization (Def. 9). In the paper's terms this is the
// `isalign` flag of ExecAdjustment.
type AdjustMode uint8

const (
	// ModeAlign produces, per left tuple, each distinct non-empty
	// intersection with a matching group tuple plus the maximal uncovered
	// gaps (temporal aligner, Def. 10).
	ModeAlign AdjustMode = iota
	// ModeNormalize splits each left tuple at every distinct split point
	// strictly inside its interval (temporal splitter, Def. 8).
	ModeNormalize
	// ModeGaps emits only the maximal uncovered sub-intervals of ModeAlign
	// and suppresses the intersections. It implements the paper's Sec. 8
	// future-work customization for the antijoin, whose reduction keeps
	// exactly the gap tuples: the aligned intersections can never survive
	// r ▷_{θ∧r.T=s.T} (sΦθr), so producing them is wasted work.
	ModeGaps
)

func (m AdjustMode) String() string {
	switch m {
	case ModeAlign:
		return "align"
	case ModeGaps:
		return "align-gaps"
	}
	return "normalize"
}

// Adjust is the ExecAdjustment executor node. Its input is the
// group-construction join stream of Sec. 6.1/6.3: one row per (left tuple,
// group member) pair — or a single ω-padded row for left tuples with an
// empty group — PARTITIONED by left tuple and SORTED within each partition
// by the intersection interval (align) or split point (normalize).
//
// For ModeAlign, P1/P2 evaluate to the precomputed intersection bounds
// (ints; ω on padded rows). For ModeNormalize, P1 evaluates to the split
// point (ω on padded rows) and P2 is unused.
//
// The node is fully pipelined: each Next call sweeps input rows until an
// output batch fills, emitting directly into the reused batch buffer (the
// batched analogue of the paper's single-tuple-per-invocation contract).
type Adjust struct {
	batching
	Input     Iterator
	Mode      AdjustMode
	LeftWidth int
	P1, P2    expr.Expr

	out schema.Schema
	in  cursor

	// Sweep state (the paper's context node n).
	cur     tuple.Tuple // current left tuple (its first LeftWidth values + T)
	curSet  bool
	sweep   int64
	lastP1  int64
	lastP2  int64
	lastSet bool
	done    bool
}

// NewAdjust builds the node. For ModeNormalize pass p2 == nil.
func NewAdjust(input Iterator, mode AdjustMode, leftWidth int, p1, p2 expr.Expr) (*Adjust, error) {
	in := input.Schema()
	if leftWidth <= 0 || leftWidth > in.Len() {
		return nil, fmt.Errorf("exec: adjust left width %d out of range for %s", leftWidth, in)
	}
	if (mode == ModeAlign || mode == ModeGaps) && (p1 == nil || p2 == nil) {
		return nil, fmt.Errorf("exec: %s mode requires P1 and P2 expressions", mode)
	}
	if mode == ModeNormalize && p1 == nil {
		return nil, fmt.Errorf("exec: normalize mode requires a split point expression")
	}
	cols := make([]int, leftWidth)
	for i := range cols {
		cols[i] = i
	}
	return &Adjust{
		Input:     input,
		Mode:      mode,
		LeftWidth: leftWidth,
		P1:        p1,
		P2:        p2,
		out:       in.Project(cols),
	}, nil
}

func (a *Adjust) Schema() schema.Schema { return a.out }

func (a *Adjust) Open() error {
	a.curSet = false
	a.lastSet = false
	a.done = false
	if err := a.Input.Open(); err != nil {
		return err
	}
	a.in.init(a.Input)
	return nil
}

// leftPart extracts the left tuple (values and valid time) from a join row.
func (a *Adjust) leftPart(row tuple.Tuple) tuple.Tuple {
	return tuple.Tuple{Vals: row.Vals[:a.LeftWidth:a.LeftWidth], T: row.T}
}

// sameGroup reports whether row belongs to the current left tuple's group.
// Relations are duplicate free, so (values, T) identifies the left tuple;
// this is the paper's `sameleft` test.
func (a *Adjust) sameGroup(row tuple.Tuple) bool {
	if !a.curSet || row.T != a.cur.T {
		return false
	}
	for i := 0; i < a.LeftWidth; i++ {
		if !row.Vals[i].Equal(a.cur.Vals[i]) {
			return false
		}
	}
	return true
}

func (a *Adjust) emit(ts, te int64) {
	if ts >= te {
		return
	}
	a.outBuf = append(a.outBuf, a.cur.WithT(interval.Interval{Ts: ts, Te: te}))
}

// closeGroup emits the trailing gap of the current left tuple, if any.
func (a *Adjust) closeGroup() {
	if !a.curSet {
		return
	}
	if a.sweep < a.cur.T.Te {
		a.emit(a.sweep, a.cur.T.Te)
	}
	a.curSet = false
}

// startGroup begins sweeping a new left tuple.
func (a *Adjust) startGroup(row tuple.Tuple) {
	a.cur = a.leftPart(row)
	a.curSet = true
	a.sweep = a.cur.T.Ts
	a.lastSet = false
}

// processRow advances the sweep with one join row.
func (a *Adjust) processRow(row tuple.Tuple) error {
	env := expr.Env{Vals: row.Vals, T: row.T}
	p1v, err := a.P1.Eval(&env)
	if err != nil {
		return err
	}
	if p1v.IsNull() {
		// ω-padded row: the left tuple has no group members; the whole
		// interval surfaces as one gap when the group closes.
		return nil
	}
	if a.Mode == ModeNormalize {
		p := p1v.Int()
		// Split points outside (Ts, Te) are filtered by the group join;
		// duplicates collapse here because the stream is sorted on P.
		if p <= a.sweep || p <= a.cur.T.Ts || p >= a.cur.T.Te {
			return nil
		}
		a.emit(a.sweep, p)
		a.sweep = p
		return nil
	}
	p2v, err := a.P2.Eval(&env)
	if err != nil {
		return err
	}
	if p2v.IsNull() {
		return nil
	}
	p1, p2 := p1v.Int(), p2v.Int()
	if p1 >= p2 {
		return nil // empty intersection: contributes nothing
	}
	// Gap before this intersection (first block of Fig. 10).
	if a.sweep < p1 {
		a.emit(a.sweep, p1)
		a.sweep = p1
	}
	// The intersection itself, skipping duplicates (second block): the
	// stream is sorted by (P1, P2), so equal intersections are adjacent.
	// ModeGaps advances the sweep without emitting it.
	if a.Mode != ModeGaps && (!a.lastSet || p1 != a.lastP1 || p2 != a.lastP2) {
		a.emit(p1, p2)
		a.lastP1, a.lastP2, a.lastSet = p1, p2, true
	}
	if p2 > a.sweep {
		a.sweep = p2
	}
	return nil
}

func (a *Adjust) Next() ([]tuple.Tuple, error) {
	a.resetOut()
	target := a.batchCap()
	for len(a.outBuf) < target && !a.done {
		row, ok, err := a.in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			a.closeGroup()
			a.done = true
			continue
		}
		if !a.sameGroup(row) {
			a.closeGroup()
			a.startGroup(row)
		}
		if err := a.processRow(row); err != nil {
			return nil, err
		}
	}
	return a.outBuf, nil
}

func (a *Adjust) Close() error {
	a.outBuf = nil
	return a.Input.Close()
}

// Absorb implements the absorb operator α (Def. 12): it removes every
// tuple whose timestamp is a proper subset of a value-equivalent tuple's
// timestamp, and collapses exact duplicates (set semantics). The paper's
// SQL surfaces it as SELECT ABSORB.
type Absorb struct {
	batching
	Input Iterator

	rows []tuple.Tuple
	pos  int
}

// NewAbsorb builds the node.
func NewAbsorb(input Iterator) *Absorb { return &Absorb{Input: input} }

func (ab *Absorb) Schema() schema.Schema { return ab.Input.Schema() }

func (ab *Absorb) Open() error {
	if err := ab.Input.Open(); err != nil {
		return err
	}
	all, err := drainAppend(nil, ab.Input)
	if err != nil {
		return err
	}
	// Sort value-equivalent tuples together, by Ts ascending then Te
	// DESCENDING: a tuple is then properly contained in an earlier tuple of
	// its value group iff its Te does not exceed the maximal Te seen so far.
	sortAbsorb(all)
	ab.rows = ab.rows[:0]
	var groupStart int
	var maxTe int64
	for i, t := range all {
		newGroup := i == 0 || !t.ValsEqual(all[groupStart])
		if newGroup {
			groupStart = i
			maxTe = t.T.Te
			ab.rows = append(ab.rows, t)
			continue
		}
		if i > 0 && t.Equal(all[i-1]) {
			continue // exact duplicate
		}
		if t.T.Te <= maxTe {
			continue // properly contained in an earlier tuple
		}
		maxTe = t.T.Te
		ab.rows = append(ab.rows, t)
	}
	ab.pos = 0
	return nil
}

// sortAbsorb key-sorts rows by (values, Ts ascending, Te DESCENDING). The
// comparator is a total order — ties are fully identical tuples — so a
// non-stable key sort replaces the previous (pointlessly stable)
// comparator sort. The Te component is bitwise complemented to descend.
func sortAbsorb(rows []tuple.Tuple) {
	tuple.KeySortFunc(rows, func(t tuple.Tuple, key []byte) []byte {
		key = t.AppendKeyVals(key)
		key = value.AppendInt64Key(key, t.T.Ts)
		mark := len(key)
		key = value.AppendInt64Key(key, t.T.Te)
		for j := mark; j < len(key); j++ {
			key[j] ^= 0xff
		}
		return key
	})
}

func (ab *Absorb) Next() ([]tuple.Tuple, error) {
	if ab.pos >= len(ab.rows) {
		return nil, nil
	}
	end := ab.pos + ab.batchCap()
	if end > len(ab.rows) {
		end = len(ab.rows)
	}
	b := ab.rows[ab.pos:end:end]
	ab.pos = end
	return b, nil
}

func (ab *Absorb) Close() error {
	ab.rows = nil
	return ab.Input.Close()
}
