package exec

import (
	"fmt"
	"sort"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// The aggregate functions: COUNT(*) counts rows, the rest apply to one
// argument expression with ω-skipping SQL semantics.
const (
	AggCountStar AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the SQL spelling of the function.
func (f AggFunc) String() string {
	return [...]string{"COUNT(*)", "COUNT", "SUM", "AVG", "MIN", "MAX"}[f]
}

// AggSpec is one aggregate column: a function over an argument expression
// (nil for COUNT(*)). ω inputs are skipped, as in SQL.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	Name string
}

// resultType returns the aggregate's output kind.
func (a AggSpec) resultType() value.Kind {
	switch a.Func {
	case AggCountStar, AggCount:
		return value.KindInt
	case AggAvg:
		return value.KindFloat
	case AggSum:
		if a.Arg != nil && a.Arg.Type() == value.KindFloat {
			return value.KindFloat
		}
		return value.KindInt
	default:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return value.KindNull
	}
}

// accumulator folds values for one aggregate in one group.
type accumulator struct {
	spec   AggSpec
	count  int64
	sumI   int64
	sumF   float64
	sawF   bool
	best   value.Value
	hasVal bool
}

func (a *accumulator) add(v value.Value) {
	if v.IsNull() {
		return
	}
	a.count++
	switch a.spec.Func {
	case AggSum, AggAvg:
		switch v.Kind() {
		case value.KindInt:
			a.sumI += v.Int()
			a.sumF += float64(v.Int())
		case value.KindFloat:
			a.sawF = true
			a.sumF += v.Float()
		}
	case AggMin:
		if !a.hasVal || v.Compare(a.best) < 0 {
			a.best = v
			a.hasVal = true
		}
	case AggMax:
		if !a.hasVal || v.Compare(a.best) > 0 {
			a.best = v
			a.hasVal = true
		}
	}
}

func (a *accumulator) result() value.Value {
	switch a.spec.Func {
	case AggCountStar, AggCount:
		return value.NewInt(a.count)
	case AggSum:
		if a.count == 0 {
			return value.Null
		}
		if a.sawF {
			return value.NewFloat(a.sumF)
		}
		return value.NewInt(a.sumI)
	case AggAvg:
		if a.count == 0 {
			return value.Null
		}
		return value.NewFloat(a.sumF / float64(a.count))
	default:
		if !a.hasVal {
			return value.Null
		}
		return a.best
	}
}

// HashAggregate groups its input by the GroupBy expressions (optionally
// plus the tuple's valid time T) and computes the aggregate columns. Output
// schema: group columns, then aggregate columns. When GroupByT is set the
// output tuples carry their group's T; otherwise the output is nontemporal
// (zero T). With no group columns and GroupByT false, SQL-style global
// aggregation over an empty input yields a single row (COUNT = 0); with
// group columns an empty input yields no rows.
type HashAggregate struct {
	batching
	Input    Iterator
	GroupBy  []expr.Expr
	Names    []string // names for the group columns
	GroupByT bool
	Aggs     []AggSpec

	out    schema.Schema
	groups []*aggGroup
	keyBuf []byte
	env    expr.Env // reused eval scratch
	pos    int
}

type aggGroup struct {
	key []value.Value
	t   interval.Interval
	// sortKey is the group's order-preserving byte key (group values,
	// then T): the hash-table key and the deterministic output order.
	sortKey string
	accs    []accumulator
	rows    int64
}

// NewHashAggregate builds the node; names must parallel groupBy.
func NewHashAggregate(input Iterator, groupBy []expr.Expr, names []string, groupByT bool, aggs []AggSpec) (*HashAggregate, error) {
	if len(groupBy) != len(names) {
		return nil, fmt.Errorf("exec: %d group names for %d group exprs", len(names), len(groupBy))
	}
	attrs := make([]schema.Attr, 0, len(groupBy)+len(aggs))
	for i, e := range groupBy {
		attrs = append(attrs, schema.Attr{Name: names[i], Type: e.Type()})
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = a.Func.String()
		}
		attrs = append(attrs, schema.Attr{Name: name, Type: a.resultType()})
	}
	return &HashAggregate{
		Input:    input,
		GroupBy:  groupBy,
		Names:    names,
		GroupByT: groupByT,
		Aggs:     aggs,
		out:      schema.Schema{Attrs: attrs},
	}, nil
}

func (h *HashAggregate) Schema() schema.Schema { return h.out }

func (h *HashAggregate) Open() error {
	if err := h.Input.Open(); err != nil {
		return err
	}
	// Groups are keyed by the order-preserving byte encoding of (group
	// values, group T): one flat map lookup per row — no hash chains, no
	// per-bucket value comparisons — and the same key later drives the
	// deterministic output sort.
	table := make(map[string]*aggGroup)
	h.groups = h.groups[:0]
	n := 0
	key := make([]value.Value, len(h.GroupBy))
	for {
		batch, err := h.Input.Next()
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			break
		}
		n += len(batch)
		for bi := range batch {
			t := batch[bi]
			h.env = expr.Env{Vals: t.Vals, T: t.T}
			kb := h.keyBuf[:0]
			for i, e := range h.GroupBy {
				v, err := e.Eval(&h.env)
				if err != nil {
					return err
				}
				key[i] = v
				kb = v.AppendKey(kb)
			}
			gt := interval.Interval{}
			if h.GroupByT {
				gt = t.T
			}
			kb = value.AppendIntervalKey(kb, gt)
			h.keyBuf = kb
			grp := table[string(kb)] // no allocation: map lookup by []byte
			if grp == nil {
				sortKey := string(kb)
				grp = &aggGroup{key: append([]value.Value(nil), key...), t: gt, sortKey: sortKey, accs: make([]accumulator, len(h.Aggs))}
				for i := range grp.accs {
					grp.accs[i].spec = h.Aggs[i]
				}
				table[sortKey] = grp
				h.groups = append(h.groups, grp)
			}
			grp.rows++
			for i := range grp.accs {
				if h.Aggs[i].Func == AggCountStar {
					grp.accs[i].count++
					continue
				}
				v, err := h.Aggs[i].Arg.Eval(&h.env)
				if err != nil {
					return err
				}
				grp.accs[i].add(v)
			}
		}
	}
	if n == 0 && len(h.GroupBy) == 0 && !h.GroupByT {
		// Global aggregation over empty input: one all-default row.
		grp := &aggGroup{accs: make([]accumulator, len(h.Aggs))}
		for i := range grp.accs {
			grp.accs[i].spec = h.Aggs[i]
		}
		h.groups = append(h.groups, grp)
	}
	// Deterministic output order: the byte keys encode exactly (group
	// values, T), so sorting them bytewise is the canonical group order.
	sort.Slice(h.groups, func(i, j int) bool {
		return h.groups[i].sortKey < h.groups[j].sortKey
	})
	h.pos = 0
	return nil
}

func (h *HashAggregate) Next() ([]tuple.Tuple, error) {
	if h.pos >= len(h.groups) {
		return nil, nil
	}
	h.resetOut()
	end := h.pos + h.batchCap()
	if end > len(h.groups) {
		end = len(h.groups)
	}
	width := len(h.out.Attrs)
	flat := make([]value.Value, (end-h.pos)*width)
	for i, g := range h.groups[h.pos:end] {
		vals := flat[i*width : i*width : (i+1)*width]
		vals = append(vals, g.key...)
		for k := range g.accs {
			vals = append(vals, g.accs[k].result())
		}
		h.outBuf = append(h.outBuf, tuple.Tuple{Vals: vals, T: g.t})
	}
	h.pos = end
	return h.outBuf, nil
}

func (h *HashAggregate) Close() error {
	h.groups = nil
	return h.Input.Close()
}
