// ColFilter: the vectorized filter. It never copies rows — each input
// batch comes back with a (possibly refined) selection vector listing the
// qualifying physical rows. Predicates are compiled once at construction
// into tri-state row closures (Kleene logic over -1/0/1 for ω/false/true)
// mirroring expr's Eval semantics exactly; the single-comparison shapes
// that dominate real filters additionally compile to branch-light batch
// kernels over the flat int64/float64 column storage.
package exec

import (
	"math"

	"talign/internal/colbatch"
	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/value"
)

// rowPred evaluates a predicate on one physical row: 1 true, 0 false,
// -1 unknown (ω).
type rowPred func(b *colbatch.Batch, row int) int8

// colVal produces one operand value for a physical row.
type colVal func(b *colbatch.Batch, row int) value.Value

// batchKernel filters a whole batch, appending qualifying physical rows
// to out. ok=false means the column is not in the expected flat layout
// for this batch (demoted storage) and the caller must fall back to the
// row closure.
type batchKernel func(b *colbatch.Batch, out []int32) (_ []int32, ok bool)

// ColFilter filters a columnar stream by writing selection vectors.
type ColFilter struct {
	Input ColIterator
	Pred  expr.Expr

	pred   rowPred
	kernel batchKernel
	selBuf []int32
}

// NewColFilter compiles pred over in's schema; ok=false when the
// predicate contains a shape the columnar compiler does not support (the
// planner then keeps the row filter).
func NewColFilter(in ColIterator, pred expr.Expr) (*ColFilter, bool) {
	p, ok := compileRowPred(pred)
	if !ok {
		return nil, false
	}
	f := &ColFilter{Input: in, Pred: pred, pred: p, kernel: compileKernel(pred)}
	return f, true
}

// Schema implements ColIterator.
func (f *ColFilter) Schema() schema.Schema { return f.Input.Schema() }

// Open implements ColIterator. The selection buffer is pre-allocated
// here: a nil selection means "all rows", so the empty selection written
// on a zero-match batch must be non-nil.
func (f *ColFilter) Open() error {
	if f.selBuf == nil {
		f.selBuf = make([]int32, 0, 16)
	}
	return f.Input.Open()
}

// NextCol implements ColIterator. Batches with empty selections are
// passed through (the contract lets drivers skip them); exhaustion stays
// the child's nil.
func (f *ColFilter) NextCol() (*colbatch.Batch, error) {
	b, err := f.Input.NextCol()
	if err != nil || b == nil {
		return nil, err
	}
	out := f.selBuf[:0]
	if f.kernel != nil && b.Sel == nil {
		if res, ok := f.kernel(b, out); ok {
			f.selBuf = res
			b.Sel = res
			return b, nil
		}
	}
	for i, nsel := 0, b.NumRows(); i < nsel; i++ {
		row := b.RowAt(i)
		if f.pred(b, row) == 1 {
			out = append(out, int32(row))
		}
	}
	f.selBuf = out
	b.Sel = out
	return b, nil
}

// Close implements ColIterator.
func (f *ColFilter) Close() error { return f.Input.Close() }

// ColFilterable reports whether the columnar compiler supports pred.
func ColFilterable(pred expr.Expr) bool {
	_, ok := compileRowPred(pred)
	return ok
}

// ColOperandOK reports whether e compiles to a columnar value accessor
// (plain column, constant or valid-time reference). The planner uses it
// to vet join keys and partition keys before committing to a columnar
// build.
func ColOperandOK(e expr.Expr) bool {
	_, ok := compileOperand(e)
	return ok
}

// compileRowPred builds the tri-state closure for a predicate tree of
// comparisons, Kleene connectives, NOT, IS [NOT] NULL, BETWEEN and
// boolean literals over column/constant/valid-time operands.
func compileRowPred(e expr.Expr) (rowPred, bool) {
	switch n := e.(type) {
	case expr.Cmp:
		l, ok := compileOperand(n.L)
		if !ok {
			return nil, false
		}
		r, ok := compileOperand(n.R)
		if !ok {
			return nil, false
		}
		op := n.Op
		return func(b *colbatch.Batch, row int) int8 {
			lv, rv := l(b, row), r(b, row)
			if lv.IsNull() || rv.IsNull() {
				return -1
			}
			return cmpTruth(op, lv.Compare(rv))
		}, true
	case expr.Logic:
		l, ok := compileRowPred(n.L)
		if !ok {
			return nil, false
		}
		r, ok := compileRowPred(n.R)
		if !ok {
			return nil, false
		}
		if n.Op == expr.AndOp {
			return func(b *colbatch.Batch, row int) int8 {
				a := l(b, row)
				if a == 0 {
					return 0
				}
				c := r(b, row)
				if c == 0 {
					return 0
				}
				if a == -1 || c == -1 {
					return -1
				}
				return 1
			}, true
		}
		return func(b *colbatch.Batch, row int) int8 {
			a := l(b, row)
			if a == 1 {
				return 1
			}
			c := r(b, row)
			if c == 1 {
				return 1
			}
			if a == -1 || c == -1 {
				return -1
			}
			return 0
		}, true
	case expr.Not:
		x, ok := compileRowPred(n.X)
		if !ok {
			return nil, false
		}
		return func(b *colbatch.Batch, row int) int8 {
			switch x(b, row) {
			case 1:
				return 0
			case 0:
				return 1
			}
			return -1
		}, true
	case expr.IsNull:
		x, ok := compileOperand(n.X)
		if !ok {
			return nil, false
		}
		neg := n.Negate
		return func(b *colbatch.Batch, row int) int8 {
			if x(b, row).IsNull() != neg {
				return 1
			}
			return 0
		}, true
	case expr.Between:
		// Same desugaring as Between.Eval.
		return compileRowPred(expr.Logic{
			Op: expr.AndOp,
			L:  expr.Cmp{Op: expr.LE, L: n.Lo, R: n.X},
			R:  expr.Cmp{Op: expr.LE, L: n.X, R: n.Hi},
		})
	case expr.Const:
		v := n.V
		if v.IsNull() {
			return func(*colbatch.Batch, int) int8 { return -1 }, true
		}
		if v.Kind() != value.KindBool {
			return nil, false
		}
		var t int8
		if v.Bool() {
			t = 1
		}
		return func(*colbatch.Batch, int) int8 { return t }, true
	}
	return nil, false
}

// compileOperand builds a value accessor for the leaf operand shapes.
func compileOperand(e expr.Expr) (colVal, bool) {
	switch n := e.(type) {
	case expr.Const:
		v := n.V
		return func(*colbatch.Batch, int) value.Value { return v }, true
	case expr.ColIdx:
		idx := n.Idx
		return func(b *colbatch.Batch, row int) value.Value {
			return b.Cols[idx].Value(row)
		}, true
	case expr.TStart:
		return func(b *colbatch.Batch, row int) value.Value {
			return value.NewInt(b.TS[row])
		}, true
	case expr.TEnd:
		return func(b *colbatch.Batch, row int) value.Value {
			return value.NewInt(b.TE[row])
		}, true
	case expr.TPeriod:
		return func(b *colbatch.Batch, row int) value.Value {
			return value.NewInterval(b.Interval(row))
		}, true
	}
	return nil, false
}

// cmpTruth maps a Compare result through a comparison operator, exactly
// as expr.Cmp.Eval does.
func cmpTruth(op expr.CmpOp, cv int) int8 {
	var b bool
	switch op {
	case expr.EQ:
		b = cv == 0
	case expr.NE:
		b = cv != 0
	case expr.LT:
		b = cv < 0
	case expr.LE:
		b = cv <= 0
	case expr.GT:
		b = cv > 0
	case expr.GE:
		b = cv >= 0
	}
	if b {
		return 1
	}
	return 0
}

// compileKernel recognizes the single-comparison shapes worth a flat
// loop: <int column> op <int const> and <float column> op <float const>,
// in either operand order, plus TS/TE against an int const. Returns nil
// when the shape doesn't match; the row closure still handles it.
func compileKernel(e expr.Expr) batchKernel {
	c, ok := e.(expr.Cmp)
	if !ok {
		return nil
	}
	op := c.Op
	if col, okc := c.L.(expr.ColIdx); okc {
		if k := constKernel(col, op, c.R); k != nil {
			return k
		}
	}
	if col, okc := c.R.(expr.ColIdx); okc {
		if k := constKernel(col, flipOp(op), c.L); k != nil {
			return k
		}
	}
	if _, okt := c.L.(expr.TStart); okt {
		if cv, oki := constInt(c.R); oki {
			return timeKernel(op, cv, true)
		}
	}
	if _, okt := c.L.(expr.TEnd); okt {
		if cv, oki := constInt(c.R); oki {
			return timeKernel(op, cv, false)
		}
	}
	if _, okt := c.R.(expr.TStart); okt {
		if cv, oki := constInt(c.L); oki {
			return timeKernel(flipOp(op), cv, true)
		}
	}
	if _, okt := c.R.(expr.TEnd); okt {
		if cv, oki := constInt(c.L); oki {
			return timeKernel(flipOp(op), cv, false)
		}
	}
	return nil
}

func constInt(e expr.Expr) (int64, bool) {
	k, ok := e.(expr.Const)
	if !ok || k.V.Kind() != value.KindInt {
		return 0, false
	}
	return k.V.Int(), true
}

// flipOp mirrors an operator across swapped operands (c op x ≡ x flip(op) c).
func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	}
	return op // EQ, NE are symmetric
}

// constKernel builds the col-op-const kernel when the constant's kind
// matches the flat storage we expect. Mixed int/float comparisons fall
// back to the row closure (exact cross-kind compare is not a flat loop).
func constKernel(col expr.ColIdx, op expr.CmpOp, cexpr expr.Expr) batchKernel {
	k, ok := cexpr.(expr.Const)
	if !ok {
		return nil
	}
	idx := col.Idx
	switch k.V.Kind() {
	case value.KindInt:
		c := k.V.Int()
		return func(b *colbatch.Batch, out []int32) ([]int32, bool) {
			vec := &b.Cols[idx]
			ints, flat := vec.IntsRaw()
			if !flat {
				return out, false
			}
			for i := range ints {
				if vec.IsNull(i) {
					continue
				}
				if cmpTruth(op, cmpI64(ints[i], c)) == 1 {
					out = append(out, int32(i))
				}
			}
			return out, true
		}
	case value.KindFloat:
		c := k.V.Float()
		return func(b *colbatch.Batch, out []int32) ([]int32, bool) {
			vec := &b.Cols[idx]
			fs, flat := vec.FloatsRaw()
			if !flat {
				return out, false
			}
			for i := range fs {
				if vec.IsNull(i) {
					continue
				}
				if cmpTruth(op, cmpF64(fs[i], c)) == 1 {
					out = append(out, int32(i))
				}
			}
			return out, true
		}
	}
	return nil
}

// timeKernel compares the TS or TE column against an int constant.
func timeKernel(op expr.CmpOp, c int64, start bool) batchKernel {
	return func(b *colbatch.Batch, out []int32) ([]int32, bool) {
		ts := b.TS
		if !start {
			ts = b.TE
		}
		for i := range ts {
			if cmpTruth(op, cmpI64(ts[i], c)) == 1 {
				out = append(out, int32(i))
			}
		}
		return out, true
	}
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpF64 is value's total float order (NaN first, NaN == NaN, -0 == 0),
// replicated so kernel results match Value.Compare bit for bit.
func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	}
	return 1
}
