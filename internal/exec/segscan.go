// Segment-aware scans. A relation loaded from on-disk storage carries
// interval-partitioned segments with zone maps; the plan layer prunes
// segments whose zone is disjoint from the pushed-down predicate and
// hands the survivors to one of these scans. Both serve exactly the
// rows of the surviving segments — pruning must never change results,
// only skip work — and both leave the pruning decision entirely to the
// planner.
package exec

import (
	"sync/atomic"

	"talign/internal/colbatch"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
)

var (
	segsScanned atomic.Uint64
	segsPruned  atomic.Uint64
)

// SegmentsObserve records a scan's pruning outcome in the process-wide
// counters surfaced through /metrics.
func SegmentsObserve(scanned, pruned int) {
	segsScanned.Add(uint64(scanned))
	segsPruned.Add(uint64(pruned))
}

// SegmentsScanned reports segments actually scanned process-wide.
func SegmentsScanned() uint64 { return segsScanned.Load() }

// SegmentsPruned reports segments skipped by zone-map pruning
// process-wide.
func SegmentsPruned() uint64 { return segsPruned.Load() }

// SegScan is the row-side segment scan: it streams the tuple ranges of
// the surviving segments as zero-copy sub-slices, like Scan does for
// whole relations.
type SegScan struct {
	batching
	Rel  *relation.Relation
	Segs []relation.Segment

	seg int
	pos int
}

// NewSegScan returns a row scan over the given segments of rel.
func NewSegScan(rel *relation.Relation, segs []relation.Segment) *SegScan {
	return &SegScan{Rel: rel, Segs: segs}
}

// Schema implements Iterator.
func (s *SegScan) Schema() schema.Schema { return s.Rel.Schema }

// Open implements Iterator.
func (s *SegScan) Open() error {
	s.seg = 0
	if len(s.Segs) > 0 {
		s.pos = s.Segs[0].Lo
	}
	return nil
}

// Next implements Iterator.
func (s *SegScan) Next() ([]tuple.Tuple, error) {
	for s.seg < len(s.Segs) {
		sg := s.Segs[s.seg]
		if s.pos >= sg.Hi {
			s.seg++
			if s.seg < len(s.Segs) {
				s.pos = s.Segs[s.seg].Lo
			}
			continue
		}
		end := s.pos + s.batchCap()
		if end > sg.Hi {
			end = sg.Hi
		}
		b := s.Rel.Tuples[s.pos:end:end]
		s.pos = end
		return b, nil
	}
	return nil, nil
}

// Close implements Iterator.
func (s *SegScan) Close() error { return nil }

// ColSegScan is the columnar segment scan: it streams zero-copy views
// of each surviving segment's columnar image (for mapped segments, the
// views alias the file mapping directly).
type ColSegScan struct {
	batching
	Segs []relation.Segment
	sch  schema.Schema

	seg  int
	pos  int
	view colbatch.Batch
}

// NewColSegScan returns a columnar scan over the given segments.
func NewColSegScan(sch schema.Schema, segs []relation.Segment) *ColSegScan {
	return &ColSegScan{Segs: segs, sch: sch}
}

// Schema implements ColIterator.
func (s *ColSegScan) Schema() schema.Schema { return s.sch }

// Open implements ColIterator.
func (s *ColSegScan) Open() error {
	s.seg = 0
	s.pos = 0
	return nil
}

// NextCol implements ColIterator: each batch is a view into one
// segment's image; batches never span segments.
func (s *ColSegScan) NextCol() (*colbatch.Batch, error) {
	for s.seg < len(s.Segs) {
		img := s.Segs[s.seg].Img
		if s.pos >= img.Len() {
			s.seg++
			s.pos = 0
			continue
		}
		end := s.pos + s.batchCap()
		if end > img.Len() {
			end = img.Len()
		}
		img.SliceInto(&s.view, s.pos, end)
		s.pos = end
		return &s.view, nil
	}
	return nil, nil
}

// Close implements ColIterator.
func (s *ColSegScan) Close() error { return nil }
