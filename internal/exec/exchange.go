package exec

import (
	"fmt"
	"hash/maphash"
	"sync"

	"talign/internal/expr"
	"talign/internal/faultinject"
	"talign/internal/schema"
	"talign/internal/tuple"
)

// chanDepth is the number of in-flight batches buffered per channel in the
// exchange layer: enough to decouple producer and consumer bursts without
// holding many batches in memory.
const chanDepth = 4

// Splitter is the partitioning half of the exchange operator pair: it
// consumes its input stream once (in a producer goroutine) and routes every
// tuple to one of DOP partition streams by the hash of the key expressions.
// Tuples with equal keys always land in the same partition, which is what
// lets a partitioned hash join, aggregation, or plane sweep run each
// partition independently.
//
// Joint partitioning: splitters feeding the two sides of a join must agree
// on the partition of equal keys, so they share a maphash seed (passed by
// the caller). Keys == nil hashes the entire tuple (values and valid time),
// the partitioning used for the aligner's group construction, which is
// independent per left tuple.
//
// Partitions are single-use: Open starts the shared producer on first use,
// and a Splitter cannot be re-opened after it is exhausted or closed.
type Splitter struct {
	batching
	input Iterator
	keys  []expr.Expr // nil = hash the whole tuple
	dop   int
	seed  maphash.Seed

	launch   sync.Once
	stop     sync.Once
	chans    []chan []tuple.Tuple
	done     chan struct{}
	finished chan struct{}
	mu       sync.Mutex
	err      error
	launched bool
	// unreleased counts partitions not yet closed. It is pre-registered at
	// construction (not incremented on Open) so that a fragment finishing
	// fast cannot drive the count to zero while a sibling is still opening.
	unreleased int
}

// NewSplitter builds a splitter over input with dop partitions. Callers
// co-partitioning several inputs (e.g. the two sides of a join) must pass
// the same seed to every splitter of the group.
func NewSplitter(input Iterator, keys []expr.Expr, dop int, seed maphash.Seed) (*Splitter, error) {
	if dop < 1 {
		return nil, fmt.Errorf("exec: splitter needs dop >= 1, got %d", dop)
	}
	s := &Splitter{
		input:      input,
		keys:       keys,
		dop:        dop,
		seed:       seed,
		chans:      make([]chan []tuple.Tuple, dop),
		done:       make(chan struct{}),
		finished:   make(chan struct{}),
		unreleased: dop,
	}
	for i := range s.chans {
		s.chans[i] = make(chan []tuple.Tuple, chanDepth)
	}
	return s, nil
}

// Partition returns the iterator for partition i (0 <= i < dop).
func (s *Splitter) Partition(i int) Iterator { return &partition{s: s, idx: i} }

func (s *Splitter) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Splitter) getErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// run is the producer: it drains the input once and routes batches. A
// panic anywhere below it (the producer drives its whole input subtree
// on this goroutine) is converted into the splitter's error instead of
// crashing the process; the deferred channel close then wakes every
// partition consumer, which sees the error through getErr.
func (s *Splitter) run() {
	defer close(s.finished)
	defer func() {
		for _, ch := range s.chans {
			close(ch)
		}
	}()
	defer func() {
		if err := Recovered("exec.Splitter producer", recover()); err != nil {
			s.setErr(err)
		}
	}()
	if err := s.input.Open(); err != nil {
		s.setErr(err)
		return
	}
	defer s.input.Close()
	n := s.batchCap()
	bufs := make([][]tuple.Tuple, s.dop)
	for i := range bufs {
		bufs[i] = make([]tuple.Tuple, 0, n)
	}
	var mh maphash.Hash
	for {
		if err := faultinject.Hit("exec.splitter.run"); err != nil {
			s.setErr(err)
			return
		}
		batch, err := s.input.Next()
		if err != nil {
			s.setErr(err)
			return
		}
		if len(batch) == 0 {
			break
		}
		for i := range batch {
			t := batch[i]
			mh.SetSeed(s.seed)
			if s.keys == nil {
				t.Hash(&mh)
			} else {
				env := expr.Env{Vals: t.Vals, T: t.T}
				for _, k := range s.keys {
					v, err := k.Eval(&env)
					if err != nil {
						s.setErr(err)
						return
					}
					v.Hash(&mh)
				}
			}
			p := int(mh.Sum64() % uint64(s.dop))
			bufs[p] = append(bufs[p], t)
			if len(bufs[p]) >= n {
				if !s.send(p, bufs[p]) {
					return
				}
				bufs[p] = make([]tuple.Tuple, 0, n)
			}
		}
	}
	for p, b := range bufs {
		if len(b) > 0 && !s.send(p, b) {
			return
		}
	}
}

// send hands a batch to partition p; it reports false when the splitter
// was shut down before the batch could be delivered.
func (s *Splitter) send(p int, b []tuple.Tuple) bool {
	select {
	case s.chans[p] <- b:
		return true
	case <-s.done:
		return false
	}
}

// release is called once per partition Close; the last one shuts the
// producer down (it may still be mid-send to an abandoned partition). If
// the producer never launched — the partitions were built but a plan
// construction error meant none was ever Opened — the last release unwinds
// in its place: it closes the channels (freeing the drain goroutines
// spawned by partition.Close) and the source iterator.
func (s *Splitter) release() {
	s.mu.Lock()
	s.unreleased--
	last := s.unreleased <= 0
	s.mu.Unlock()
	if !last {
		return
	}
	s.stop.Do(func() { close(s.done) })
	// Claim the launch slot: after this Do, either the producer is (or
	// was) running, or it never will be.
	s.launch.Do(func() {})
	s.mu.Lock()
	launched := s.launched
	s.mu.Unlock()
	if launched {
		<-s.finished
		return
	}
	for _, ch := range s.chans {
		close(ch)
	}
	s.input.Close()
}

// partition is one output stream of a Splitter.
type partition struct {
	s      *Splitter
	idx    int
	closed bool
}

func (p *partition) Schema() schema.Schema { return p.s.input.Schema() }

func (p *partition) Open() error {
	p.s.launch.Do(func() {
		p.s.mu.Lock()
		p.s.launched = true
		p.s.mu.Unlock()
		go p.s.run()
	})
	return nil
}

func (p *partition) Next() ([]tuple.Tuple, error) {
	b, ok := <-p.s.chans[p.idx]
	if !ok {
		return nil, p.s.getErr()
	}
	return b, nil
}

func (p *partition) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	// Drain this partition in the background so the producer can never
	// block on an abandoned stream while sibling partitions still consume
	// (the channel is closed by the producer when it exits).
	go func() {
		for range p.s.chans[p.idx] {
		}
	}()
	p.s.release()
	return nil
}

// Exchange is the merge half of the exchange operator pair: it runs one
// plan fragment per partition in its own worker goroutine and interleaves
// their output batches into a single stream. Output order across partitions
// is nondeterministic; relations are sets, and order-sensitive consumers
// (ORDER BY, the shell's canonical printing) sort above the exchange.
type Exchange struct {
	Inputs []Iterator // one fragment per partition

	out    schema.Schema
	ch     chan []tuple.Tuple
	done   chan struct{}
	stop   sync.Once
	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
	opened bool
}

// NewExchange merges the given fragments (all must share a schema).
func NewExchange(inputs []Iterator) (*Exchange, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: exchange needs at least one input")
	}
	return &Exchange{Inputs: inputs, out: inputs[0].Schema()}, nil
}

func (e *Exchange) Schema() schema.Schema { return e.out }

func (e *Exchange) setErr(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	// Cancel the sibling workers: a failed fragment poisons the query.
	e.stop.Do(func() { close(e.done) })
}

func (e *Exchange) getErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

func (e *Exchange) Open() error {
	e.ch = make(chan []tuple.Tuple, chanDepth*len(e.Inputs))
	e.done = make(chan struct{})
	e.stop = sync.Once{}
	e.opened = true
	for _, in := range e.Inputs {
		e.wg.Add(1)
		go e.worker(in)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
	return nil
}

// worker drives one fragment. The fragment's whole operator subtree runs
// on this goroutine, so the drive loop and the teardown are each behind
// a recovery boundary: a panicking fragment poisons the query with a
// structured error (setErr cancels the siblings) and the worker still
// exits through wg.Done — never a crashed process, never a hung Close.
func (e *Exchange) worker(in Iterator) {
	defer e.wg.Done()
	if err := e.drive(in); err != nil {
		e.setErr(err)
	}
	if err := closeGuarded("exec.Exchange fragment close", in); err != nil {
		e.setErr(err)
	}
}

// drive is the worker's pull loop, panic-isolated.
func (e *Exchange) drive(in Iterator) (err error) {
	defer RecoverAsError("exec.Exchange worker", &err)
	if err := in.Open(); err != nil {
		return err
	}
	for {
		if err := faultinject.Hit("exec.exchange.worker"); err != nil {
			return err
		}
		b, err := in.Next()
		if err != nil {
			return err
		}
		if len(b) == 0 {
			return nil
		}
		// The fragment reuses its batch buffer, so hand a copy over.
		cp := make([]tuple.Tuple, len(b))
		copy(cp, b)
		select {
		case e.ch <- cp:
		case <-e.done:
			return nil
		}
	}
}

// closeGuarded closes an iterator behind a recovery boundary: teardown
// of operators a panic left mid-flight must not panic the process.
func closeGuarded(site string, it Iterator) (err error) {
	defer RecoverAsError(site, &err)
	return it.Close()
}

func (e *Exchange) Next() ([]tuple.Tuple, error) {
	b, ok := <-e.ch
	if !ok {
		return nil, e.getErr()
	}
	return b, nil
}

func (e *Exchange) Close() error {
	if !e.opened {
		return nil
	}
	e.opened = false
	e.stop.Do(func() { close(e.done) })
	// Unblock any worker parked on a send, then wait for them to finish
	// closing their fragments.
	for range e.ch {
	}
	e.wg.Wait()
	return e.getErr()
}
