package exec

import (
	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// JoinType enumerates join flavours. Semi and Anti emit left tuples only.
type JoinType uint8

// The join flavours; outer joins pad the unmatched side with ω.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
	SemiJoin
	AntiJoin
)

// String renders the flavour for EXPLAIN labels.
func (j JoinType) String() string {
	return [...]string{"inner", "left outer", "right outer", "full outer", "semi", "anti"}[j]
}

// projectsLeftOnly reports whether the join type outputs only the left row.
func (j JoinType) projectsLeftOnly() bool { return j == SemiJoin || j == AntiJoin }

// joinCore holds behaviour shared by all join implementations.
type joinCore struct {
	typ    JoinType
	lWidth int
	rWidth int
	// matchT additionally requires l.T == r.T (the reduction rules'
	// timestamp equality). It is part of the join condition, i.e. it
	// determines null-extension for outer joins.
	matchT bool
	// scratch avoids re-allocating the concatenated row for every
	// candidate pair in the inner loops; env is the matching reused
	// evaluation environment.
	scratch []value.Value
	env     expr.Env
}

// combine builds an output tuple from a matched pair. The output valid time
// is the left tuple's T (equal to the right's when matchT is set).
func (jc *joinCore) combine(l, r tuple.Tuple) tuple.Tuple {
	if jc.typ.projectsLeftOnly() {
		return l
	}
	return l.Concat(r, l.T)
}

// padRight builds an output for an unmatched left tuple (left/full outer).
func (jc *joinCore) padRight(l tuple.Tuple) tuple.Tuple {
	return l.Concat(tuple.NullPad(jc.rWidth, l.T), l.T)
}

// padLeft builds an output for an unmatched right tuple (right/full outer).
func (jc *joinCore) padLeft(r tuple.Tuple) tuple.Tuple {
	return tuple.NullPad(jc.lWidth, r.T).Concat(r, r.T)
}

// matches evaluates the join condition over a candidate pair: optional
// timestamp equality, then the predicate over the concatenated row with
// env.T = l.T.
func (jc *joinCore) matches(cond expr.Expr, l, r tuple.Tuple) (bool, error) {
	if jc.matchT && l.T != r.T {
		return false, nil
	}
	if cond == nil {
		return true, nil
	}
	jc.scratch = jc.scratch[:0]
	jc.scratch = append(jc.scratch, l.Vals...)
	jc.scratch = append(jc.scratch, r.Vals...)
	jc.env = expr.Env{Vals: jc.scratch, T: l.T}
	return expr.EvalBool(cond, &jc.env)
}

// NestedLoopJoin evaluates an arbitrary join condition by scanning the
// materialized right input once per left tuple. It supports every join
// type; inner-side match bookkeeping implements right/full outer.
type NestedLoopJoin struct {
	batching
	Left, Right Iterator
	Cond        expr.Expr // bound against Concat(left, right); may be nil
	Type        JoinType
	MatchT      bool

	core       joinCore
	out        schema.Schema
	left       cursor
	inner      []tuple.Tuple
	innerMatch []bool
	cur        tuple.Tuple
	curValid   bool
	curMatched bool
	innerPos   int
	drainPos   int // for right/full outer pad phase
	draining   bool
	done       bool
}

// NewNestedLoopJoin constructs the node; cond may be nil for a Cartesian
// product.
func NewNestedLoopJoin(l, r Iterator, cond expr.Expr, typ JoinType, matchT bool) *NestedLoopJoin {
	n := &NestedLoopJoin{Left: l, Right: r, Cond: cond, Type: typ, MatchT: matchT}
	n.core = joinCore{typ: typ, lWidth: l.Schema().Len(), rWidth: r.Schema().Len(), matchT: matchT}
	if typ.projectsLeftOnly() {
		n.out = l.Schema()
	} else {
		n.out = l.Schema().Concat(r.Schema())
	}
	return n
}

func (n *NestedLoopJoin) Schema() schema.Schema { return n.out }

func (n *NestedLoopJoin) Open() error {
	if err := n.Left.Open(); err != nil {
		return err
	}
	if err := n.Right.Open(); err != nil {
		return err
	}
	var err error
	n.inner, err = drainAppend(n.inner[:0], n.Right)
	if err != nil {
		return err
	}
	if n.Type == RightOuterJoin || n.Type == FullOuterJoin {
		n.innerMatch = make([]bool, len(n.inner))
	}
	n.left.init(n.Left)
	n.curValid = false
	n.draining = false
	n.drainPos = 0
	n.done = false
	return nil
}

func (n *NestedLoopJoin) Next() ([]tuple.Tuple, error) {
	n.resetOut()
	target := n.batchCap()
	for len(n.outBuf) < target && !n.done {
		if n.draining {
			for n.drainPos < len(n.inner) && len(n.outBuf) < target {
				i := n.drainPos
				n.drainPos++
				if !n.innerMatch[i] {
					n.outBuf = append(n.outBuf, n.core.padLeft(n.inner[i]))
				}
			}
			if n.drainPos >= len(n.inner) {
				n.done = true
			}
			continue
		}
		if !n.curValid {
			l, ok, err := n.left.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				if n.Type == RightOuterJoin || n.Type == FullOuterJoin {
					n.draining = true
					continue
				}
				n.done = true
				continue
			}
			n.cur = l
			n.curValid = true
			n.curMatched = false
			n.innerPos = 0
		}
		disqualified := false
		for n.innerPos < len(n.inner) {
			r := n.inner[n.innerPos]
			idx := n.innerPos
			n.innerPos++
			ok, err := n.core.matches(n.Cond, n.cur, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			n.curMatched = true
			if n.innerMatch != nil {
				n.innerMatch[idx] = true
			}
			switch n.Type {
			case SemiJoin:
				n.curValid = false
				n.outBuf = append(n.outBuf, n.cur)
				disqualified = true
			case AntiJoin:
				// A match disqualifies the left tuple; for anti joins we
				// stop probing immediately (this early exit is what makes
				// NOT EXISTS fast on D_eq in Fig. 15(b)).
				n.curValid = false
				disqualified = true
			default:
				n.outBuf = append(n.outBuf, n.core.combine(n.cur, r))
				if len(n.outBuf) >= target {
					// Batch full mid-probe: innerPos persists, so the next
					// call resumes exactly here.
					return n.outBuf, nil
				}
			}
			if disqualified {
				break
			}
		}
		if disqualified {
			continue
		}
		// Inner exhausted for this left tuple.
		n.curValid = false
		if !n.curMatched {
			switch n.Type {
			case LeftOuterJoin, FullOuterJoin:
				n.outBuf = append(n.outBuf, n.core.padRight(n.cur))
			case AntiJoin:
				n.outBuf = append(n.outBuf, n.cur)
			}
		}
	}
	return n.outBuf, nil
}

func (n *NestedLoopJoin) Close() error {
	n.inner = nil
	n.innerMatch = nil
	err1 := n.Left.Close()
	err2 := n.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
