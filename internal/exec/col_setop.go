// ColSetOp: vectorized UNION. Dedup works exactly like the row SetOp's —
// a persistent byteSet over full row keys (values + valid time) — but
// the keys are encoded straight from the vectors and surviving rows are
// only marked in the selection vector, never copied. Intersect/except
// need the full right side first and stay on the row path for now.
package exec

import (
	"fmt"

	"talign/internal/colbatch"
	"talign/internal/schema"
)

// ColSetOp streams the union of two columnar inputs with set-semantics
// dedup across both.
type ColSetOp struct {
	Left, Right ColIterator

	seen   *byteSet
	keyBuf []byte
	selBuf []int32
	phase  int // 0 = left, 1 = right
}

// NewColSetOp returns a columnar union; the inputs must be union
// compatible (same check as the row operator).
func NewColSetOp(l, r ColIterator) (*ColSetOp, error) {
	if !l.Schema().UnionCompatible(r.Schema()) {
		return nil, fmt.Errorf("exec: set operation inputs not union compatible: %s vs %s", l.Schema(), r.Schema())
	}
	return &ColSetOp{Left: l, Right: r}, nil
}

// Schema implements ColIterator (the left schema, as on the row side).
func (s *ColSetOp) Schema() schema.Schema { return s.Left.Schema() }

// Open implements ColIterator. The selection buffer must be non-nil
// before the first batch: a nil selection means "all rows", so an
// all-duplicate batch must carry a non-nil empty selection.
func (s *ColSetOp) Open() error {
	if err := s.Left.Open(); err != nil {
		return err
	}
	if err := s.Right.Open(); err != nil {
		return err
	}
	s.seen = newByteSet(0)
	if s.selBuf == nil {
		s.selBuf = make([]int32, 0, 16)
	}
	s.phase = 0
	return nil
}

// NextCol implements ColIterator: left batches first, then right, each
// refined to the rows whose full key is new.
func (s *ColSetOp) NextCol() (*colbatch.Batch, error) {
	for {
		var b *colbatch.Batch
		var err error
		if s.phase == 0 {
			b, err = s.Left.NextCol()
			if err != nil {
				return nil, err
			}
			if b == nil {
				s.phase = 1
				continue
			}
		} else {
			b, err = s.Right.NextCol()
			if err != nil || b == nil {
				return nil, err
			}
		}
		out := s.selBuf[:0]
		for i, nsel := 0, b.NumRows(); i < nsel; i++ {
			row := b.RowAt(i)
			s.keyBuf = b.AppendRowKey(s.keyBuf[:0], row)
			if s.seen.insert(s.keyBuf) {
				out = append(out, int32(row))
			}
		}
		s.selBuf = out
		b.Sel = out
		return b, nil
	}
}

// Close implements ColIterator.
func (s *ColSetOp) Close() error {
	s.seen = nil
	err1 := s.Left.Close()
	err2 := s.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
