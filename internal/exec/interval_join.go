package exec

import (
	"fmt"
	"sort"

	"talign/internal/expr"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// IntervalJoin is the Sec. 8 "future work" access path: a sort-based
// overlap join for the group-construction step of alignment and
// normalization when θ carries no equi-join keys (e.g. O1's θ = true),
// where the paper's implementation falls back to a quadratic nested loop.
//
// The right input is materialized and sorted by interval start. For a left
// tuple with valid time [Ts, Te), overlap candidates satisfy
// r.Ts < Te and r.Te > Ts; since r.Te ≤ r.Ts + maxDur (maxDur = the
// longest right interval), every candidate has r.Ts > Ts - maxDur. Binary
// searching that lower bound and scanning while r.Ts < Te touches only a
// window of the sorted input, giving O(n·log m + n·window) instead of
// O(n·m). The full join condition is still evaluated per candidate, so an
// arbitrary residual θ remains supported.
//
// Only inner and left outer joins are provided — exactly what group
// construction needs.
type IntervalJoin struct {
	batching
	Left, Right Iterator
	Cond        expr.Expr // over Concat(left, right) with env.T = left T
	Type        JoinType

	core    joinCore
	out     schema.Schema
	left    cursor
	rights  []tuple.Tuple
	starts  []int64
	maxDur  int64
	cur     tuple.Tuple
	curOK   bool
	curHit  bool
	scanPos int
	scanEnd int64
	done    bool
}

// NewIntervalJoin builds the node.
func NewIntervalJoin(l, r Iterator, cond expr.Expr, typ JoinType) (*IntervalJoin, error) {
	if typ != InnerJoin && typ != LeftOuterJoin {
		return nil, fmt.Errorf("exec: interval join supports inner and left outer joins, not %s", typ)
	}
	j := &IntervalJoin{Left: l, Right: r, Cond: cond, Type: typ}
	j.core = joinCore{typ: typ, lWidth: l.Schema().Len(), rWidth: r.Schema().Len()}
	j.out = l.Schema().Concat(r.Schema())
	return j, nil
}

func (j *IntervalJoin) Schema() schema.Schema { return j.out }

func (j *IntervalJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	var err error
	j.rights, err = drainAppend(j.rights[:0], j.Right)
	if err != nil {
		return err
	}
	j.maxDur = 0
	for _, t := range j.rights {
		if d := t.T.Duration(); d > j.maxDur {
			j.maxDur = d
		}
	}
	// Key sort by (Ts, full tuple key): ordered by interval start with a
	// deterministic total tie break.
	tuple.KeySortFunc(j.rights, func(t tuple.Tuple, key []byte) []byte {
		return t.AppendKey(value.AppendInt64Key(key, t.T.Ts))
	})
	j.starts = make([]int64, len(j.rights))
	for i, t := range j.rights {
		j.starts[i] = t.T.Ts
	}
	j.left.init(j.Left)
	j.curOK = false
	j.done = false
	return nil
}

func (j *IntervalJoin) Next() ([]tuple.Tuple, error) {
	j.resetOut()
	target := j.batchCap()
	for len(j.outBuf) < target && !j.done {
		if !j.curOK {
			l, ok, err := j.left.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				j.done = true
				continue
			}
			j.cur = l
			j.curOK = true
			j.curHit = false
			// Window [lower bound, Te): candidates that can overlap.
			lo := l.T.Ts - j.maxDur
			j.scanPos = sort.Search(len(j.starts), func(i int) bool { return j.starts[i] > lo })
			j.scanEnd = l.T.Te
		}
		for j.scanPos < len(j.rights) && j.starts[j.scanPos] < j.scanEnd {
			r := j.rights[j.scanPos]
			j.scanPos++
			if !j.cur.T.Overlaps(r.T) {
				continue
			}
			ok, err := j.core.matches(j.Cond, j.cur, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			j.curHit = true
			j.outBuf = append(j.outBuf, j.core.combine(j.cur, r))
			if len(j.outBuf) >= target {
				// Batch full mid-window: scanPos persists, the next call
				// resumes the window scan for the same left tuple.
				return j.outBuf, nil
			}
		}
		hit := j.curHit
		cur := j.cur
		j.curOK = false
		if !hit && j.Type == LeftOuterJoin {
			j.outBuf = append(j.outBuf, j.core.padRight(cur))
		}
	}
	return j.outBuf, nil
}

func (j *IntervalJoin) Close() error {
	j.rights = nil
	j.starts = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
