package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// faultyIter panics or errors on demand at each Iterator call.
type faultyIter struct {
	sch        schema.Schema
	openPanic  any
	nextPanic  any
	closePanic any
	batches    [][]tuple.Tuple
	pos        int
	closed     bool
}

func (f *faultyIter) Schema() schema.Schema { return f.sch }

func (f *faultyIter) Open() error {
	if f.openPanic != nil {
		panic(f.openPanic)
	}
	return nil
}

func (f *faultyIter) Next() ([]tuple.Tuple, error) {
	if f.nextPanic != nil {
		panic(f.nextPanic)
	}
	if f.pos >= len(f.batches) {
		return nil, nil
	}
	b := f.batches[f.pos]
	f.pos++
	return b, nil
}

func (f *faultyIter) Close() error {
	f.closed = true
	if f.closePanic != nil {
		panic(f.closePanic)
	}
	return nil
}

func rowsOf(n int) [][]tuple.Tuple {
	var out [][]tuple.Tuple
	for i := 0; i < n; i++ {
		out = append(out, []tuple.Tuple{{}})
	}
	return out
}

// TestGuardRecoversPanics proves a panic at any Iterator call surfaces as
// a structured *PanicError instead of crashing, and that the recovery
// counter advances.
func TestGuardRecoversPanics(t *testing.T) {
	for _, call := range []string{"open", "next", "close"} {
		f := &faultyIter{}
		switch call {
		case "open":
			f.openPanic = "boom"
		case "next":
			f.nextPanic = "boom"
		case "close":
			f.closePanic = "boom"
		}
		g := NewGuard(context.Background(), nil, f)
		before := PanicsRecovered()

		var err error
		switch call {
		case "open":
			err = g.Open()
		case "next":
			_, err = g.Next()
		case "close":
			err = g.Close()
		}

		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: got %v, want *PanicError", call, err)
		}
		if pe.Val != "boom" || !strings.Contains(pe.Error(), "internal error") {
			t.Fatalf("%s: bad PanicError: %v", call, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("%s: PanicError has no stack", call)
		}
		if PanicsRecovered() != before+1 {
			t.Fatalf("%s: PanicsRecovered did not advance", call)
		}
	}
}

// TestGuardCancellation proves a cancelled context aborts Open and Next
// with the context's error.
func TestGuardCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGuard(ctx, nil, &faultyIter{batches: rowsOf(3)})
	if err := g.Open(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open under cancelled ctx: got %v, want context.Canceled", err)
	}
	if _, err := g.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next under cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestGuardBudget proves the row budget trips with a structured
// *BudgetError once cumulative output exceeds the cap, and stays
// tripped.
func TestGuardBudget(t *testing.T) {
	bud := NewBudget(2, 0)
	g := NewGuard(nil, bud, &faultyIter{batches: rowsOf(5)})
	if err := g.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		_, err = g.Next()
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.Resource != "rows" || be.Limit != 2 {
		t.Fatalf("bad BudgetError: %+v", be)
	}
	if _, err2 := g.Next(); !errors.As(err2, &be) {
		t.Fatalf("tripped budget did not stay tripped: %v", err2)
	}
}

// TestGuardByteBudget proves the byte budget trips on wide batches even
// when the row count stays small.
func TestGuardByteBudget(t *testing.T) {
	bud := NewBudget(0, 10)
	g := NewGuard(nil, bud, &faultyIter{batches: rowsOf(2)})
	_ = g.Open()
	var err error
	for i := 0; i < 2 && err == nil; i++ {
		_, err = g.Next()
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.Resource != "bytes" {
		t.Fatalf("bad resource: %+v", be)
	}
}

// TestExchangeWorkerPanicIsolated proves a panic inside an exchange
// fragment goroutine surfaces as a structured error from the consuming
// side and still closes the fragment.
func TestExchangeWorkerPanicIsolated(t *testing.T) {
	frag := &faultyIter{nextPanic: "fragment boom"}
	ex, err := NewExchange([]Iterator{frag})
	if err != nil {
		t.Fatalf("NewExchange: %v", err)
	}
	if err := ex.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	for err == nil {
		var b []tuple.Tuple
		b, err = ex.Next()
		if err == nil && len(b) == 0 {
			break
		}
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError from fragment goroutine", err)
	}
	// Close propagates the stored fragment error; it must be the same
	// structured error, never a fresh panic.
	if cerr := ex.Close(); cerr != nil && !errors.As(cerr, &pe) {
		t.Fatalf("Close: %v", cerr)
	}
	if !frag.closed {
		t.Fatal("fragment iterator was not closed after its panic")
	}
}
