package exec

import (
	"math/rand"
	"testing"

	"talign/internal/expr"
	"talign/internal/value"
)

// The vector microbenchmarks: filter, projection and the fused adjust
// over columnar batches, with their row twins for comparison. All report
// allocations — the point of the columnar pipeline is that the steady
// state allocates per batch, not per row.

func benchPred() expr.Expr {
	return expr.Le(expr.ColIdx{Idx: 1, Typ: value.KindInt, Name: "v"}, expr.Int(25))
}

func BenchmarkColFilter(b *testing.B) {
	rel := colTestRel(rand.New(rand.NewSource(31)), 8192, false)
	rel.Columnar() // pre-warm: measure the filter, not the conversion
	f, ok := NewColFilter(NewColScan(rel), benchPred())
	if !ok {
		b.Fatal("pred did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := f.NextCol()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowFilter(b *testing.B) {
	rel := colTestRel(rand.New(rand.NewSource(31)), 8192, false)
	f := NewFilter(NewScan(rel), benchPred())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drainIterator(f); err != nil {
			b.Fatal(err)
		}
	}
}

func benchProjExprs() ([]string, []expr.Expr) {
	return []string{"v", "ts"}, []expr.Expr{
		expr.ColIdx{Idx: 1, Typ: value.KindInt, Name: "v"},
		expr.TStart{},
	}
}

func BenchmarkColProject(b *testing.B) {
	rel := colTestRel(rand.New(rand.NewSource(32)), 8192, false)
	rel.Columnar()
	_, exprs := benchProjExprs()
	names, _ := benchProjExprs()
	rp, err := NewProject(NewScan(rel), names, exprs)
	if err != nil {
		b.Fatal(err)
	}
	p, ok := NewColProject(NewColScan(rel), exprs, rp.Out, TKeep, nil)
	if !ok {
		b.Fatal("projection did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := p.NextCol()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowProject(b *testing.B) {
	rel := colTestRel(rand.New(rand.NewSource(32)), 8192, false)
	names, exprs := benchProjExprs()
	p, err := NewProject(NewScan(rel), names, exprs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drainIterator(p); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAdjustKeys() []expr.EquiPair {
	k := expr.ColIdx{Idx: 0, Typ: value.KindInt, Name: "k"}
	return []expr.EquiPair{{Left: k, Right: k}}
}

func BenchmarkColFusedAdjust(b *testing.B) {
	r := rand.New(rand.NewSource(33))
	left := colTestRel(r, 2048, false)
	right := colTestRel(r, 2048, false)
	left.Columnar()
	right.Columnar()
	f, ok := NewColFusedAdjust(NewColScan(left), NewColScan(right), ModeAlign, GroupHash, benchAdjustKeys(), -1)
	if !ok {
		b.Fatal("fused adjust did not compile")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := f.NextCol()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowFusedAdjust(b *testing.B) {
	r := rand.New(rand.NewSource(33))
	left := colTestRel(r, 2048, false)
	right := colTestRel(r, 2048, false)
	f, err := NewFusedAdjust(NewScan(left), NewScan(right), ModeAlign, GroupHash, benchAdjustKeys(), nil, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := drainIterator(f); err != nil {
			b.Fatal(err)
		}
	}
}

// drainIterator runs a row pipeline to exhaustion.
func drainIterator(it Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	for {
		batch, err := it.Next()
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			break
		}
	}
	return it.Close()
}
