package exec

import (
	"fmt"
	"hash/maphash"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// SetOpKind enumerates the set operators (set semantics: outputs are
// duplicate free; tuples compare on values AND valid time, which after
// normalization is exactly the paper's equality-only comparison).
type SetOpKind uint8

const (
	UnionOp SetOpKind = iota
	IntersectOp
	ExceptOp
)

func (k SetOpKind) String() string {
	return [...]string{"union", "intersect", "except"}[k]
}

// SetOp implements UNION / INTERSECT / EXCEPT over union compatible inputs.
type SetOp struct {
	batching
	Left, Right Iterator
	Kind        SetOpKind

	seed  maphash.Seed
	seen  map[uint64][]tuple.Tuple // dedup / membership table
	rhs   map[uint64][]tuple.Tuple // right side membership (intersect/except)
	phase int
	done  bool
}

// NewSetOp builds the node; it validates union compatibility.
func NewSetOp(l, r Iterator, kind SetOpKind) (*SetOp, error) {
	if !l.Schema().UnionCompatible(r.Schema()) {
		return nil, fmt.Errorf("exec: %s arguments not union compatible: %s vs %s", kind, l.Schema(), r.Schema())
	}
	return &SetOp{Left: l, Right: r, Kind: kind, seed: maphash.MakeSeed()}, nil
}

func (s *SetOp) Schema() schema.Schema { return s.Left.Schema() }

func (s *SetOp) hash(t tuple.Tuple) uint64 {
	var mh maphash.Hash
	mh.SetSeed(s.seed)
	t.Hash(&mh)
	return mh.Sum64()
}

// memberAdd inserts t into m if absent; it reports whether t was added.
func (s *SetOp) memberAdd(m map[uint64][]tuple.Tuple, t tuple.Tuple) bool {
	hv := s.hash(t)
	for _, o := range m[hv] {
		if o.Equal(t) {
			return false
		}
	}
	m[hv] = append(m[hv], t)
	return true
}

func (s *SetOp) member(m map[uint64][]tuple.Tuple, t tuple.Tuple) bool {
	hv := s.hash(t)
	for _, o := range m[hv] {
		if o.Equal(t) {
			return true
		}
	}
	return false
}

func (s *SetOp) Open() error {
	if err := s.Left.Open(); err != nil {
		return err
	}
	if err := s.Right.Open(); err != nil {
		return err
	}
	s.seen = make(map[uint64][]tuple.Tuple)
	s.phase = 0
	s.done = false
	if s.Kind == IntersectOp || s.Kind == ExceptOp {
		s.rhs = make(map[uint64][]tuple.Tuple)
		for {
			batch, err := s.Right.Next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				break
			}
			for i := range batch {
				s.memberAdd(s.rhs, batch[i])
			}
		}
	}
	return nil
}

func (s *SetOp) Next() ([]tuple.Tuple, error) {
	s.resetOut()
	target := s.batchCap()
	for len(s.outBuf) < target && !s.done {
		switch s.phase {
		case 0: // left input
			batch, err := s.Left.Next()
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				if s.Kind == UnionOp {
					s.phase = 1
					continue
				}
				s.done = true
				break
			}
			for i := range batch {
				t := batch[i]
				switch s.Kind {
				case UnionOp:
					if s.memberAdd(s.seen, t) {
						s.outBuf = append(s.outBuf, t)
					}
				case IntersectOp:
					if s.member(s.rhs, t) && s.memberAdd(s.seen, t) {
						s.outBuf = append(s.outBuf, t)
					}
				case ExceptOp:
					if !s.member(s.rhs, t) && s.memberAdd(s.seen, t) {
						s.outBuf = append(s.outBuf, t)
					}
				}
			}
		case 1: // union: right input
			batch, err := s.Right.Next()
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				s.done = true
				break
			}
			for i := range batch {
				if s.memberAdd(s.seen, batch[i]) {
					s.outBuf = append(s.outBuf, batch[i])
				}
			}
		}
	}
	return s.outBuf, nil
}

func (s *SetOp) Close() error {
	s.seen = nil
	s.rhs = nil
	err1 := s.Left.Close()
	err2 := s.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Distinct removes exact duplicates (values and valid time), enforcing set
// semantics after projections.
type Distinct struct {
	batching
	Input Iterator

	seed maphash.Seed
	seen map[uint64][]tuple.Tuple
	done bool
}

// NewDistinct builds the node.
func NewDistinct(input Iterator) *Distinct {
	return &Distinct{Input: input, seed: maphash.MakeSeed()}
}

func (d *Distinct) Schema() schema.Schema { return d.Input.Schema() }

func (d *Distinct) Open() error {
	d.seen = make(map[uint64][]tuple.Tuple)
	d.done = false
	return d.Input.Open()
}

func (d *Distinct) Next() ([]tuple.Tuple, error) {
	d.resetOut()
	target := d.batchCap()
	for len(d.outBuf) < target && !d.done {
		batch, err := d.Input.Next()
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			d.done = true
			break
		}
		for i := range batch {
			t := batch[i]
			var mh maphash.Hash
			mh.SetSeed(d.seed)
			t.Hash(&mh)
			hv := mh.Sum64()
			dup := false
			for _, o := range d.seen[hv] {
				if o.Equal(t) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			d.seen[hv] = append(d.seen[hv], t)
			d.outBuf = append(d.outBuf, t)
		}
	}
	return d.outBuf, nil
}

func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}
