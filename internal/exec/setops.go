package exec

import (
	"fmt"
	"hash/maphash"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// SetOpKind enumerates the set operators (set semantics: outputs are
// duplicate free; tuples compare on values AND valid time, which after
// normalization is exactly the paper's equality-only comparison).
type SetOpKind uint8

const (
	UnionOp SetOpKind = iota
	IntersectOp
	ExceptOp
)

func (k SetOpKind) String() string {
	return [...]string{"union", "intersect", "except"}[k]
}

// SetOp implements UNION / INTERSECT / EXCEPT over union compatible inputs.
type SetOp struct {
	Left, Right Iterator
	Kind        SetOpKind

	seed  maphash.Seed
	seen  map[uint64][]tuple.Tuple // dedup / membership table
	rhs   map[uint64][]tuple.Tuple // right side membership (intersect/except)
	phase int
}

// NewSetOp builds the node; it validates union compatibility.
func NewSetOp(l, r Iterator, kind SetOpKind) (*SetOp, error) {
	if !l.Schema().UnionCompatible(r.Schema()) {
		return nil, fmt.Errorf("exec: %s arguments not union compatible: %s vs %s", kind, l.Schema(), r.Schema())
	}
	return &SetOp{Left: l, Right: r, Kind: kind, seed: maphash.MakeSeed()}, nil
}

func (s *SetOp) Schema() schema.Schema { return s.Left.Schema() }

func (s *SetOp) hash(t tuple.Tuple) uint64 {
	var mh maphash.Hash
	mh.SetSeed(s.seed)
	t.Hash(&mh)
	return mh.Sum64()
}

// memberAdd inserts t into m if absent; it reports whether t was added.
func (s *SetOp) memberAdd(m map[uint64][]tuple.Tuple, t tuple.Tuple) bool {
	hv := s.hash(t)
	for _, o := range m[hv] {
		if o.Equal(t) {
			return false
		}
	}
	m[hv] = append(m[hv], t)
	return true
}

func (s *SetOp) member(m map[uint64][]tuple.Tuple, t tuple.Tuple) bool {
	hv := s.hash(t)
	for _, o := range m[hv] {
		if o.Equal(t) {
			return true
		}
	}
	return false
}

func (s *SetOp) Open() error {
	if err := s.Left.Open(); err != nil {
		return err
	}
	if err := s.Right.Open(); err != nil {
		return err
	}
	s.seen = make(map[uint64][]tuple.Tuple)
	s.phase = 0
	if s.Kind == IntersectOp || s.Kind == ExceptOp {
		s.rhs = make(map[uint64][]tuple.Tuple)
		for {
			t, ok, err := s.Right.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			s.memberAdd(s.rhs, t)
		}
	}
	return nil
}

func (s *SetOp) Next() (tuple.Tuple, bool, error) {
	for {
		switch s.phase {
		case 0: // left input
			t, ok, err := s.Left.Next()
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			if !ok {
				if s.Kind == UnionOp {
					s.phase = 1
					continue
				}
				return tuple.Tuple{}, false, nil
			}
			switch s.Kind {
			case UnionOp:
				if s.memberAdd(s.seen, t) {
					return t, true, nil
				}
			case IntersectOp:
				if s.member(s.rhs, t) && s.memberAdd(s.seen, t) {
					return t, true, nil
				}
			case ExceptOp:
				if !s.member(s.rhs, t) && s.memberAdd(s.seen, t) {
					return t, true, nil
				}
			}
		case 1: // union: right input
			t, ok, err := s.Right.Next()
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			if !ok {
				return tuple.Tuple{}, false, nil
			}
			if s.memberAdd(s.seen, t) {
				return t, true, nil
			}
		}
	}
}

func (s *SetOp) Close() error {
	s.seen = nil
	s.rhs = nil
	err1 := s.Left.Close()
	err2 := s.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Distinct removes exact duplicates (values and valid time), enforcing set
// semantics after projections.
type Distinct struct {
	Input Iterator

	seed maphash.Seed
	seen map[uint64][]tuple.Tuple
}

// NewDistinct builds the node.
func NewDistinct(input Iterator) *Distinct {
	return &Distinct{Input: input, seed: maphash.MakeSeed()}
}

func (d *Distinct) Schema() schema.Schema { return d.Input.Schema() }

func (d *Distinct) Open() error {
	d.seen = make(map[uint64][]tuple.Tuple)
	return d.Input.Open()
}

func (d *Distinct) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := d.Input.Next()
		if err != nil || !ok {
			return tuple.Tuple{}, false, err
		}
		var mh maphash.Hash
		mh.SetSeed(d.seed)
		t.Hash(&mh)
		hv := mh.Sum64()
		dup := false
		for _, o := range d.seen[hv] {
			if o.Equal(t) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[hv] = append(d.seen[hv], t)
		return t, true, nil
	}
}

func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}
