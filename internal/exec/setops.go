package exec

import (
	"fmt"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// SetOpKind enumerates the set operators (set semantics: outputs are
// duplicate free; tuples compare on values AND valid time, which after
// normalization is exactly the paper's equality-only comparison).
type SetOpKind uint8

// The set operations of Table 2's reductions.
const (
	UnionOp SetOpKind = iota
	IntersectOp
	ExceptOp
)

// String renders the operation for EXPLAIN labels.
func (k SetOpKind) String() string {
	return [...]string{"union", "intersect", "except"}[k]
}

// SetOp implements UNION / INTERSECT / EXCEPT over union compatible
// inputs. Membership uses the order-preserving tuple key encoding: byte
// keys are bitwise equal exactly when tuples are Equal, so an
// arena-backed byte-key set replaces hash chains, per-candidate tuple
// comparisons and per-key string allocations.
type SetOp struct {
	batching
	Left, Right Iterator
	Kind        SetOpKind

	seen   *byteSet // dedup / membership table
	rhs    *byteSet // right side membership (intersect/except)
	keyBuf []byte
	phase  int
	done   bool
}

// NewSetOp builds the node; it validates union compatibility.
func NewSetOp(l, r Iterator, kind SetOpKind) (*SetOp, error) {
	if !l.Schema().UnionCompatible(r.Schema()) {
		return nil, fmt.Errorf("exec: %s arguments not union compatible: %s vs %s", kind, l.Schema(), r.Schema())
	}
	return &SetOp{Left: l, Right: r, Kind: kind}, nil
}

func (s *SetOp) Schema() schema.Schema { return s.Left.Schema() }

// key encodes t into the reused buffer; valid until the next call.
func (s *SetOp) key(t tuple.Tuple) []byte {
	s.keyBuf = t.AppendKey(s.keyBuf[:0])
	return s.keyBuf
}

// memberAdd inserts t into m if absent; it reports whether t was added.
func (s *SetOp) memberAdd(m *byteSet, t tuple.Tuple) bool {
	return m.insert(s.key(t))
}

func (s *SetOp) member(m *byteSet, t tuple.Tuple) bool {
	return m.contains(s.key(t))
}

func (s *SetOp) Open() error {
	if err := s.Left.Open(); err != nil {
		return err
	}
	if err := s.Right.Open(); err != nil {
		return err
	}
	s.seen = newByteSet(0)
	s.phase = 0
	s.done = false
	if s.Kind == IntersectOp || s.Kind == ExceptOp {
		s.rhs = newByteSet(0)
		for {
			batch, err := s.Right.Next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				break
			}
			for i := range batch {
				s.memberAdd(s.rhs, batch[i])
			}
		}
	}
	return nil
}

func (s *SetOp) Next() ([]tuple.Tuple, error) {
	s.resetOut()
	target := s.batchCap()
	for len(s.outBuf) < target && !s.done {
		switch s.phase {
		case 0: // left input
			batch, err := s.Left.Next()
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				if s.Kind == UnionOp {
					s.phase = 1
					continue
				}
				s.done = true
				break
			}
			for i := range batch {
				t := batch[i]
				switch s.Kind {
				case UnionOp:
					if s.memberAdd(s.seen, t) {
						s.outBuf = append(s.outBuf, t)
					}
				case IntersectOp:
					if s.member(s.rhs, t) && s.memberAdd(s.seen, t) {
						s.outBuf = append(s.outBuf, t)
					}
				case ExceptOp:
					if !s.member(s.rhs, t) && s.memberAdd(s.seen, t) {
						s.outBuf = append(s.outBuf, t)
					}
				}
			}
		case 1: // union: right input
			batch, err := s.Right.Next()
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				s.done = true
				break
			}
			for i := range batch {
				if s.memberAdd(s.seen, batch[i]) {
					s.outBuf = append(s.outBuf, batch[i])
				}
			}
		}
	}
	return s.outBuf, nil
}

func (s *SetOp) Close() error {
	s.seen = nil
	s.rhs = nil
	err1 := s.Left.Close()
	err2 := s.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Distinct removes exact duplicates (values and valid time), enforcing
// set semantics after projections. Like SetOp it keys a byte-key set
// with the order-preserving tuple encoding instead of hash chains.
type Distinct struct {
	batching
	Input Iterator

	seen   *byteSet
	keyBuf []byte
	done   bool
}

// NewDistinct builds the node.
func NewDistinct(input Iterator) *Distinct {
	return &Distinct{Input: input}
}

func (d *Distinct) Schema() schema.Schema { return d.Input.Schema() }

func (d *Distinct) Open() error {
	d.seen = newByteSet(0)
	d.done = false
	return d.Input.Open()
}

func (d *Distinct) Next() ([]tuple.Tuple, error) {
	d.resetOut()
	target := d.batchCap()
	for len(d.outBuf) < target && !d.done {
		batch, err := d.Input.Next()
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			d.done = true
			break
		}
		for i := range batch {
			d.keyBuf = batch[i].AppendKey(d.keyBuf[:0])
			if d.seen.insert(d.keyBuf) {
				d.outBuf = append(d.outBuf, batch[i])
			}
		}
	}
	return d.outBuf, nil
}

func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}
