package exec

import (
	"fmt"
	"sort"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Filter passes through tuples satisfying Pred (σ). Pred must be bound
// against Input's schema; it is evaluated with env.T = the tuple's T, so
// predicates over the tuple's own valid time are possible.
type Filter struct {
	Input Iterator
	Pred  expr.Expr
}

// NewFilter builds a filter node.
func NewFilter(input Iterator, pred expr.Expr) *Filter {
	return &Filter{Input: input, Pred: pred}
}

func (f *Filter) Schema() schema.Schema { return f.Input.Schema() }
func (f *Filter) Open() error           { return f.Input.Open() }
func (f *Filter) Close() error          { return f.Input.Close() }

func (f *Filter) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := f.Input.Next()
		if err != nil || !ok {
			return tuple.Tuple{}, false, err
		}
		env := expr.Env{Vals: t.Vals, T: t.T}
		keep, err := expr.EvalBool(f.Pred, &env)
		if err != nil {
			return tuple.Tuple{}, false, err
		}
		if keep {
			return t, true, nil
		}
	}
}

// TPolicy controls what valid time a Project node assigns to its outputs.
type TPolicy uint8

const (
	// TKeep propagates the input tuple's T (the default for π).
	TKeep TPolicy = iota
	// TZero marks outputs as nontemporal (zero interval).
	TZero
	// TFromExpr computes T from TExpr, which must yield a period value;
	// tuples whose TExpr is ω or empty are dropped (used by the standard-SQL
	// baseline to build intersection timestamps).
	TFromExpr
)

// Project evaluates Exprs over each input tuple (π plus computed columns).
type Project struct {
	Input Iterator
	Exprs []expr.Expr
	Out   schema.Schema
	TMode TPolicy
	TExpr expr.Expr // used when TMode == TFromExpr
}

// NewProject builds a projection. names gives the output attribute names;
// types are inferred from the bound expressions.
func NewProject(input Iterator, names []string, exprs []expr.Expr) (*Project, error) {
	if len(names) != len(exprs) {
		return nil, fmt.Errorf("exec: %d names for %d expressions", len(names), len(exprs))
	}
	attrs := make([]schema.Attr, len(exprs))
	for i, e := range exprs {
		attrs[i] = schema.Attr{Name: names[i], Type: e.Type()}
	}
	return &Project{Input: input, Exprs: exprs, Out: schema.Schema{Attrs: attrs}}, nil
}

// NewProjectCols builds a projection of the given column positions.
func NewProjectCols(input Iterator, cols []int) *Project {
	in := input.Schema()
	exprs := make([]expr.Expr, len(cols))
	attrs := make([]schema.Attr, len(cols))
	for i, c := range cols {
		exprs[i] = expr.ColIdx{Idx: c, Typ: in.Attrs[c].Type, Name: in.Attrs[c].Name}
		attrs[i] = in.Attrs[c]
	}
	return &Project{Input: input, Exprs: exprs, Out: schema.Schema{Attrs: attrs}}
}

func (p *Project) Schema() schema.Schema { return p.Out }
func (p *Project) Open() error           { return p.Input.Open() }
func (p *Project) Close() error          { return p.Input.Close() }

func (p *Project) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := p.Input.Next()
		if err != nil || !ok {
			return tuple.Tuple{}, false, err
		}
		env := expr.Env{Vals: t.Vals, T: t.T}
		vals := make([]value.Value, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(&env)
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			vals[i] = v
		}
		var ts interval.Interval
		switch p.TMode {
		case TKeep:
			ts = t.T
		case TZero:
			ts = interval.Interval{}
		case TFromExpr:
			v, err := p.TExpr.Eval(&env)
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			if v.IsNull() {
				continue // empty or unknown period: drop the tuple
			}
			ts = v.Interval()
			if !ts.Valid() {
				continue
			}
		}
		return tuple.Tuple{Vals: vals, T: ts}, true, nil
	}
}

// SortKey is one ordering term.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by Keys (values compare
// with the total order of the value package; ω sorts first).
type Sort struct {
	Input Iterator
	Keys  []SortKey

	rows []decorated
	pos  int
	open bool
}

type decorated struct {
	t    tuple.Tuple
	keys []value.Value
}

// NewSort builds a sort node.
func NewSort(input Iterator, keys ...SortKey) *Sort {
	return &Sort{Input: input, Keys: keys}
}

// ByCols returns ascending sort keys for the given column positions.
func ByCols(s schema.Schema, cols ...int) []SortKey {
	out := make([]SortKey, len(cols))
	for i, c := range cols {
		out[i] = SortKey{Expr: expr.ColIdx{Idx: c, Typ: s.Attrs[c].Type, Name: s.Attrs[c].Name}}
	}
	return out
}

func (s *Sort) Schema() schema.Schema { return s.Input.Schema() }

func (s *Sort) Open() error {
	if err := s.Input.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	for {
		t, ok, err := s.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		env := expr.Env{Vals: t.Vals, T: t.T}
		keys := make([]value.Value, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.Expr.Eval(&env)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		s.rows = append(s.rows, decorated{t: t, keys: keys})
	}
	sortDecorated(s.rows, s.Keys)
	s.pos = 0
	s.open = true
	return nil
}

func (s *Sort) Next() (tuple.Tuple, bool, error) {
	if !s.open || s.pos >= len(s.rows) {
		return tuple.Tuple{}, false, nil
	}
	t := s.rows[s.pos].t
	s.pos++
	return t, true, nil
}

func (s *Sort) Close() error {
	s.rows = nil
	s.open = false
	return s.Input.Close()
}

func sortDecorated(rows []decorated, keys []SortKey) {
	sort.SliceStable(rows, func(x, y int) bool {
		a, b := rows[x], rows[y]
		for i := range keys {
			c := a.keys[i].Compare(b.keys[i])
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		// Total tie-break keeps output deterministic.
		return a.t.Compare(b.t) < 0
	})
}
