package exec

import (
	"fmt"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// Filter passes through tuples satisfying Pred (σ). Pred must be bound
// against Input's schema; it is evaluated with env.T = the tuple's T, so
// predicates over the tuple's own valid time are possible.
type Filter struct {
	batching
	Input Iterator
	Pred  expr.Expr

	env  expr.Env // reused eval scratch
	done bool
}

// NewFilter builds a filter node.
func NewFilter(input Iterator, pred expr.Expr) *Filter {
	return &Filter{Input: input, Pred: pred}
}

func (f *Filter) Schema() schema.Schema { return f.Input.Schema() }

func (f *Filter) Open() error {
	f.done = false
	return f.Input.Open()
}

func (f *Filter) Close() error { return f.Input.Close() }

func (f *Filter) Next() ([]tuple.Tuple, error) {
	f.resetOut()
	target := f.batchCap()
	// Keep consuming input until the output batch fills: a selective
	// predicate must not degrade downstream operators to tiny batches.
	for len(f.outBuf) < target && !f.done {
		in, err := f.Input.Next()
		if err != nil {
			return nil, err
		}
		if len(in) == 0 {
			// Latch exhaustion: the contract forbids calling the child's
			// Next again after an empty batch.
			f.done = true
			break
		}
		for i := range in {
			f.env = expr.Env{Vals: in[i].Vals, T: in[i].T}
			keep, err := expr.EvalBool(f.Pred, &f.env)
			if err != nil {
				return nil, err
			}
			if keep {
				f.outBuf = append(f.outBuf, in[i])
			}
		}
	}
	return f.outBuf, nil
}

// TPolicy controls what valid time a Project node assigns to its outputs.
type TPolicy uint8

const (
	// TKeep propagates the input tuple's T (the default for π).
	TKeep TPolicy = iota
	// TZero marks outputs as nontemporal (zero interval).
	TZero
	// TFromExpr computes T from TExpr, which must yield a period value;
	// tuples whose TExpr is ω or empty are dropped (used by the standard-SQL
	// baseline to build intersection timestamps).
	TFromExpr
)

// Project evaluates Exprs over each input tuple (π plus computed columns).
type Project struct {
	batching
	Input Iterator
	Exprs []expr.Expr
	Out   schema.Schema
	TMode TPolicy
	TExpr expr.Expr // used when TMode == TFromExpr

	env  expr.Env // reused eval scratch
	done bool
}

// NewProject builds a projection. names gives the output attribute names;
// types are inferred from the bound expressions.
func NewProject(input Iterator, names []string, exprs []expr.Expr) (*Project, error) {
	if len(names) != len(exprs) {
		return nil, fmt.Errorf("exec: %d names for %d expressions", len(names), len(exprs))
	}
	attrs := make([]schema.Attr, len(exprs))
	for i, e := range exprs {
		attrs[i] = schema.Attr{Name: names[i], Type: e.Type()}
	}
	return &Project{Input: input, Exprs: exprs, Out: schema.Schema{Attrs: attrs}}, nil
}

// NewProjectCols builds a projection of the given column positions.
func NewProjectCols(input Iterator, cols []int) *Project {
	in := input.Schema()
	exprs := make([]expr.Expr, len(cols))
	attrs := make([]schema.Attr, len(cols))
	for i, c := range cols {
		exprs[i] = expr.ColIdx{Idx: c, Typ: in.Attrs[c].Type, Name: in.Attrs[c].Name}
		attrs[i] = in.Attrs[c]
	}
	return &Project{Input: input, Exprs: exprs, Out: schema.Schema{Attrs: attrs}}
}

func (p *Project) Schema() schema.Schema { return p.Out }

func (p *Project) Open() error {
	p.done = false
	return p.Input.Open()
}

func (p *Project) Close() error { return p.Input.Close() }

func (p *Project) Next() ([]tuple.Tuple, error) {
	p.resetOut()
	target := p.batchCap()
	for len(p.outBuf) < target && !p.done {
		in, err := p.Input.Next()
		if err != nil {
			return nil, err
		}
		if len(in) == 0 {
			p.done = true
			break
		}
		// One contiguous allocation of output values for the whole batch.
		flat := make([]value.Value, len(in)*len(p.Exprs))
		for i := range in {
			p.env = expr.Env{Vals: in[i].Vals, T: in[i].T}
			vals := flat[i*len(p.Exprs) : (i+1)*len(p.Exprs) : (i+1)*len(p.Exprs)]
			for k, e := range p.Exprs {
				v, err := e.Eval(&p.env)
				if err != nil {
					return nil, err
				}
				vals[k] = v
			}
			var ts interval.Interval
			switch p.TMode {
			case TKeep:
				ts = in[i].T
			case TZero:
				ts = interval.Interval{}
			case TFromExpr:
				v, err := p.TExpr.Eval(&p.env)
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					continue // empty or unknown period: drop the tuple
				}
				ts = v.Interval()
				if !ts.Valid() {
					continue
				}
			}
			p.outBuf = append(p.outBuf, tuple.Tuple{Vals: vals, T: ts})
		}
	}
	return p.outBuf, nil
}

// SortKey is one ordering term.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by Keys (values compare
// with the total order of the value package; ω sorts first). Rows are
// decorated with order-preserving byte keys — sort terms first (DESC terms
// bitwise complemented), then the full tuple key as a deterministic tie
// break — and sorted bytewise, with a radix fast path for fixed-width
// schemas. The sort is not stable; the tie break makes the order total.
type Sort struct {
	batching
	Input Iterator
	Keys  []SortKey

	rows  []tuple.Tuple
	keys  [][]byte
	arena []byte
	env   expr.Env // reused eval scratch
	pos   int
	open  bool
}

// NewSort builds a sort node.
func NewSort(input Iterator, keys ...SortKey) *Sort {
	return &Sort{Input: input, Keys: keys}
}

// ByCols returns ascending sort keys for the given column positions.
func ByCols(s schema.Schema, cols ...int) []SortKey {
	out := make([]SortKey, len(cols))
	for i, c := range cols {
		out[i] = SortKey{Expr: expr.ColIdx{Idx: c, Typ: s.Attrs[c].Type, Name: s.Attrs[c].Name}}
	}
	return out
}

func (s *Sort) Schema() schema.Schema { return s.Input.Schema() }

func (s *Sort) Open() error {
	if err := s.Input.Open(); err != nil {
		return err
	}
	rows, err := drainAppend(s.rows[:0], s.Input)
	if err != nil {
		return err
	}
	// Encode one byte key per row into a shared arena; the arena and key
	// slice are reused across Opens.
	arena := s.arena[:0]
	keys := s.keys[:0]
	for i := range rows {
		s.env = expr.Env{Vals: rows[i].Vals, T: rows[i].T}
		start := len(arena)
		for k := range s.Keys {
			v, err := s.Keys[k].Expr.Eval(&s.env)
			if err != nil {
				return err
			}
			mark := len(arena)
			arena = v.AppendKey(arena)
			if s.Keys[k].Desc {
				for j := mark; j < len(arena); j++ {
					arena[j] ^= 0xff
				}
			}
		}
		// Total tie break keeps output deterministic.
		arena = rows[i].AppendKey(arena)
		keys = append(keys, arena[start:len(arena):len(arena)])
	}
	tuple.KeySort(rows, keys)
	s.rows, s.keys, s.arena = rows, keys, arena
	s.pos = 0
	s.open = true
	return nil
}

func (s *Sort) Next() ([]tuple.Tuple, error) {
	if !s.open || s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + s.batchCap()
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b := s.rows[s.pos:end:end]
	s.pos = end
	return b, nil
}

func (s *Sort) Close() error {
	s.rows = nil
	s.keys = nil
	s.arena = nil
	s.open = false
	return s.Input.Close()
}
