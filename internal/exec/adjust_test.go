package exec

import (
	"testing"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// buildJoinStream hand-crafts the group-construction stream for Adjust:
// rows of (left value, p1, p2) with the left tuple's T. ω p1 marks a
// padded (empty group) row.
func buildJoinStream(rows []struct {
	val     string
	ts, te  int64
	p1, p2  int64
	noMatch bool
}) *relation.Relation {
	sch := schema.MustNew(
		schema.Attr{Name: "x", Type: value.KindString},
		schema.Attr{Name: "p1", Type: value.KindInt},
		schema.Attr{Name: "p2", Type: value.KindInt},
	)
	rel := relation.New(sch)
	for _, r := range rows {
		p1, p2 := value.NewInt(r.p1), value.NewInt(r.p2)
		if r.noMatch {
			p1, p2 = value.Null, value.Null
		}
		rel.Tuples = append(rel.Tuples, tuple.New(interval.New(r.ts, r.te), value.NewString(r.val), p1, p2))
	}
	return rel
}

func runAdjust(t *testing.T, rel *relation.Relation, mode AdjustMode) *relation.Relation {
	t.Helper()
	p1 := expr.ColIdx{Idx: 1, Typ: value.KindInt}
	var p2 expr.Expr
	if mode == ModeAlign {
		p2 = expr.ColIdx{Idx: 2, Typ: value.KindInt}
	}
	ad, err := NewAdjust(NewScan(rel), mode, 1, p1, p2)
	if err != nil {
		t.Fatalf("adjust: %v", err)
	}
	out, err := Collect(ad)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return out
}

type stream = []struct {
	val     string
	ts, te  int64
	p1, p2  int64
	noMatch bool
}

// TestAdjustAlignFig11 replays the four invocations of Fig. 11: group g1
// with intersections [2012/2..4) and [2012/3..4) inside r1 = [2012/1..6).
func TestAdjustAlignFig11(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "r1", ts: 0, te: 5, p1: 1, p2: 3},
		{val: "r1", ts: 0, te: 5, p1: 2, p2: 3},
	})
	got := runAdjust(t, in, ModeAlign)
	want := relation.NewBuilder("x string").
		Row(0, 1, "r1"). // gap before first intersection
		Row(1, 3, "r1"). // first intersection
		Row(2, 3, "r1"). // second intersection
		Row(3, 5, "r1"). // remaining tail
		MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustAlignDedup: identical intersections from different group
// members collapse (set semantics, Sec. 6.1).
func TestAdjustAlignDedup(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "r1", ts: 0, te: 10, p1: 2, p2: 4},
		{val: "r1", ts: 0, te: 10, p1: 2, p2: 4},
		{val: "r1", ts: 0, te: 10, p1: 2, p2: 4},
	})
	got := runAdjust(t, in, ModeAlign)
	want := relation.NewBuilder("x string").
		Row(0, 2, "r1").
		Row(2, 4, "r1").
		Row(4, 10, "r1").
		MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustAlignEmptyGroup: an ω-padded row yields the whole interval.
func TestAdjustAlignEmptyGroup(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "r1", ts: 3, te: 9, noMatch: true},
	})
	got := runAdjust(t, in, ModeAlign)
	want := relation.NewBuilder("x string").Row(3, 9, "r1").MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustAlignCoveredPrefix: an intersection covering the whole left
// interval leaves no gaps.
func TestAdjustAlignCoveredPrefix(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "r1", ts: 2, te: 6, p1: 2, p2: 6},
		{val: "r1", ts: 2, te: 6, p1: 3, p2: 5},
	})
	got := runAdjust(t, in, ModeAlign)
	want := relation.NewBuilder("x string").
		Row(2, 6, "r1").
		Row(3, 5, "r1").
		MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustGroupBoundary: two left tuples in sequence sweep separately,
// including value-equivalent left tuples with different timestamps.
func TestAdjustGroupBoundary(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "a", ts: 0, te: 4, p1: 1, p2: 2},
		{val: "a", ts: 6, te: 9, noMatch: true},
		{val: "b", ts: 0, te: 2, p1: 0, p2: 2},
	})
	got := runAdjust(t, in, ModeAlign)
	want := relation.NewBuilder("x string").
		Row(0, 1, "a").
		Row(1, 2, "a").
		Row(2, 4, "a").
		Row(6, 9, "a").
		Row(0, 2, "b").
		MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustNormalize: split points partition the interval; duplicates and
// out-of-range points are ignored.
func TestAdjustNormalize(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "r1", ts: 0, te: 10, p1: 3},
		{val: "r1", ts: 0, te: 10, p1: 3}, // duplicate split point
		{val: "r1", ts: 0, te: 10, p1: 7},
	})
	got := runAdjust(t, in, ModeNormalize)
	want := relation.NewBuilder("x string").
		Row(0, 3, "r1").
		Row(3, 7, "r1").
		Row(7, 10, "r1").
		MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustNormalizeNoPoints: no split points reproduce the input tuple.
func TestAdjustNormalizeNoPoints(t *testing.T) {
	in := buildJoinStream(stream{
		{val: "r1", ts: 5, te: 8, noMatch: true},
	})
	got := runAdjust(t, in, ModeNormalize)
	want := relation.NewBuilder("x string").Row(5, 8, "r1").MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdjustValidation covers constructor errors.
func TestAdjustValidation(t *testing.T) {
	rel := buildJoinStream(stream{})
	p1 := expr.ColIdx{Idx: 1, Typ: value.KindInt}
	if _, err := NewAdjust(NewScan(rel), ModeAlign, 1, p1, nil); err == nil {
		t.Error("align without P2 must fail")
	}
	if _, err := NewAdjust(NewScan(rel), ModeNormalize, 1, nil, nil); err == nil {
		t.Error("normalize without P must fail")
	}
	if _, err := NewAdjust(NewScan(rel), ModeAlign, 0, p1, p1); err == nil {
		t.Error("zero left width must fail")
	}
	if _, err := NewAdjust(NewScan(rel), ModeAlign, 9, p1, p1); err == nil {
		t.Error("oversized left width must fail")
	}
}

// TestAbsorbDef12 checks α on the paper's Example 9 shape plus duplicates.
func TestAbsorbDef12(t *testing.T) {
	in := relation.NewBuilder("x string").
		Row(1, 9, "a").
		Row(3, 7, "a").  // properly contained: removed
		Row(1, 9, "a").  // exact duplicate: collapsed
		Row(3, 7, "b").  // different value: kept
		Row(1, 5, "a").  // shares start with [1,9): contained, removed
		Row(5, 9, "a").  // shares end with [1,9): contained, removed
		Row(8, 12, "a"). // overlaps but not contained: kept
		MustBuild()
	got, err := Collect(NewAbsorb(NewScan(in)))
	if err != nil {
		t.Fatalf("absorb: %v", err)
	}
	want := relation.NewBuilder("x string").
		Row(1, 9, "a").
		Row(8, 12, "a").
		Row(3, 7, "b").
		MustBuild()
	if !relation.SetEqual(got, want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestAbsorbEmpty covers the trivial cases.
func TestAbsorbEmpty(t *testing.T) {
	in := relation.NewBuilder("x string").MustBuild()
	got, err := Collect(NewAbsorb(NewScan(in)))
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty absorb: %v %v", got, err)
	}
}
