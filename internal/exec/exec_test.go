package exec

import (
	"math/rand"
	"testing"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

func attrsR() []schema.Attr {
	return []schema.Attr{{Name: "x", Type: value.KindString}, {Name: "v", Type: value.KindInt}}
}

func attrsS() []schema.Attr {
	return []schema.Attr{{Name: "y", Type: value.KindString}, {Name: "w", Type: value.KindInt}}
}

func collect(t *testing.T, it Iterator) *relation.Relation {
	t.Helper()
	out, err := Collect(it)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return out
}

// equiKeys is x = y as an EquiPair plus its bound full condition.
func equiKeys(r, s *relation.Relation) ([]expr.EquiPair, expr.Expr) {
	pairs := []expr.EquiPair{{
		Left:  expr.ColIdx{Idx: 0, Typ: value.KindString},
		Right: expr.ColIdx{Idx: 0, Typ: value.KindString},
	}}
	cond := expr.Eq(
		expr.ColIdx{Idx: 0, Typ: value.KindString},
		expr.ColIdx{Idx: r.Schema.Len(), Typ: value.KindString},
	)
	return pairs, cond
}

// TestJoinMethodsAgree verifies that nested loop, hash and merge joins
// produce identical result sets for every join type, with and without
// residual conditions and timestamp matching.
func TestJoinMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	types := []JoinType{InnerJoin, LeftOuterJoin, RightOuterJoin, FullOuterJoin, SemiJoin, AntiJoin}
	for round := 0; round < 40; round++ {
		r := randrel.Generate(rng, randrel.DefaultConfig(attrsR()...))
		s := randrel.Generate(rng, randrel.DefaultConfig(attrsS()...))
		pairs, cond := equiKeys(r, s)
		residual := expr.Le(
			expr.ColIdx{Idx: 1, Typ: value.KindInt},
			expr.ColIdx{Idx: r.Schema.Len() + 1, Typ: value.KindInt},
		)
		full := expr.And(cond, residual)
		for _, typ := range types {
			for _, matchT := range []bool{false, true} {
				nl := collect(t, NewNestedLoopJoin(NewScan(r), NewScan(s), full, typ, matchT))
				hj := collect(t, NewHashJoin(NewScan(r), NewScan(s), pairs, residual, typ, matchT))
				mkSort := func(rel *relation.Relation, col int) Iterator {
					return NewSort(NewScan(rel), SortKey{Expr: expr.ColIdx{Idx: col, Typ: value.KindString}})
				}
				mj, err := NewMergeJoin(mkSort(r, 0), mkSort(s, 0), pairs, residual, typ, matchT)
				if err != nil {
					t.Fatalf("merge join: %v", err)
				}
				mg := collect(t, mj)
				if !relation.SetEqual(nl, hj) {
					a, b := relation.Diff(nl, hj)
					t.Fatalf("round %d %s matchT=%v: hash differs from nested loop\nonly nl: %v\nonly hash: %v\nr:\n%s\ns:\n%s",
						round, typ, matchT, a, b, r, s)
				}
				if !relation.SetEqual(nl, mg) {
					a, b := relation.Diff(nl, mg)
					t.Fatalf("round %d %s matchT=%v: merge differs from nested loop\nonly nl: %v\nonly merge: %v\nr:\n%s\ns:\n%s",
						round, typ, matchT, a, b, r, s)
				}
			}
		}
	}
}

// TestJoinNullKeysNeverMatch: ω keys behave like SQL nulls.
func TestJoinNullKeysNeverMatch(t *testing.T) {
	r := relation.New(schema.Schema{Attrs: attrsR()})
	r.MustAppend(mkT(0, 10, value.Null, value.NewInt(1)))
	s := relation.New(schema.Schema{Attrs: attrsS()})
	s.MustAppend(mkT(0, 10, value.Null, value.NewInt(2)))
	pairs, cond := equiKeys(r, s)
	nl := collect(t, NewNestedLoopJoin(NewScan(r), NewScan(s), cond, LeftOuterJoin, false))
	hj := collect(t, NewHashJoin(NewScan(r), NewScan(s), pairs, nil, LeftOuterJoin, false))
	if nl.Len() != 1 || !nl.Tuples[0].Vals[2].IsNull() {
		t.Fatalf("nested loop: want one padded row, got %s", nl)
	}
	if !relation.SetEqual(nl, hj) {
		t.Fatalf("hash join disagrees on null keys:\n%s\nvs\n%s", nl, hj)
	}
}

func mkT(ts, te int64, vals ...value.Value) tuple.Tuple {
	return tuple.New(interval.New(ts, te), vals...)
}
