// Package exec implements the Volcano-style query executor: pipelined
// iterators for scans, selections, projections, sorts, nested-loop / hash /
// sort-merge joins (inner, left/right/full outer, semi, anti), hash
// aggregation, set operations, duplicate elimination, and the paper's new
// executor nodes: Adjust (the plane-sweep ExecAdjustment of Fig. 10, serving
// both temporal alignment and temporal normalization), and Absorb (Def. 12).
//
// Every tuple carries its valid-time interval T natively. Join nodes can be
// asked to additionally match T with equality (MatchT), which is exactly the
// "r.T = s.T" comparison the reduction rules of Table 2 append to θ.
//
// Convention: when a join condition is evaluated over the concatenated row,
// env.T holds the LEFT input tuple's valid time, so TStart/TEnd in residual
// conditions refer to the left side. The temporal layer projects the right
// side's timestamp into ordinary columns before joining when it needs it.
package exec

import (
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
)

// Iterator is the Volcano operator interface. Usage: Open, repeated Next
// until ok==false, Close. Next must not be called after it reported
// ok==false or an error.
type Iterator interface {
	// Schema describes the output tuples' nontemporal attributes.
	Schema() schema.Schema
	// Open prepares the iterator (and its children) for iteration.
	Open() error
	// Next produces the next tuple; ok==false signals exhaustion.
	Next() (t tuple.Tuple, ok bool, err error)
	// Close releases resources; it is idempotent.
	Close() error
}

// Collect drains it into a materialized relation, handling Open/Close.
func Collect(it Iterator) (*relation.Relation, error) {
	out := relation.New(it.Schema())
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, t)
	}
}

// Scan iterates over a materialized relation.
type Scan struct {
	Rel *relation.Relation
	pos int
}

// NewScan returns a scan over rel.
func NewScan(rel *relation.Relation) *Scan { return &Scan{Rel: rel} }

func (s *Scan) Schema() schema.Schema { return s.Rel.Schema }

func (s *Scan) Open() error {
	s.pos = 0
	return nil
}

func (s *Scan) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.Rel.Tuples) {
		return tuple.Tuple{}, false, nil
	}
	t := s.Rel.Tuples[s.pos]
	s.pos++
	return t, true, nil
}

func (s *Scan) Close() error { return nil }
