// Package exec implements the batch-vectorized query executor: pipelined
// iterators for scans, selections, projections, sorts, nested-loop / hash /
// sort-merge joins (inner, left/right/full outer, semi, anti), hash
// aggregation, set operations, duplicate elimination, the paper's new
// executor nodes — Adjust (the plane-sweep ExecAdjustment of Fig. 10,
// serving both temporal alignment and temporal normalization), FusedAdjust
// (the fused group-construction → sweep operator that replaces the
// join → sort → Adjust chain without materializing concatenated rows) and
// Absorb (Def. 12) — plus a hash-partitioned parallel exchange layer
// (Splitter / Exchange) that spreads a plan fragment across worker
// goroutines.
//
// Sorting, grouping and set membership run over order-preserving byte
// keys (value.AppendKey / tuple.AppendKey): comparisons are memcmp, sorts
// are non-stable key sorts with a radix fast path (tuple.KeySort), and
// hash tables key on the encodings instead of chaining + re-comparing.
//
// Operators exchange data batch-at-a-time: Next returns a slice of tuples
// and an empty batch signals exhaustion. Batching amortizes the virtual
// Next dispatch across BatchSize tuples and lets hot loops (hash-join
// probe, the Adjust sweep) run over pre-sized buffers.
//
// Every tuple carries its valid-time interval T natively. Join nodes can be
// asked to additionally match T with equality (MatchT), which is exactly the
// "r.T = s.T" comparison the reduction rules of Table 2 append to θ.
//
// Convention: when a join condition is evaluated over the concatenated row,
// env.T holds the LEFT input tuple's valid time, so TStart/TEnd in residual
// conditions refer to the left side. The temporal layer projects the right
// side's timestamp into ordinary columns before joining when it needs it.
package exec

import (
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
)

// DefaultBatchSize is the number of tuples per batch when an operator's
// BatchSize field is left zero. It is large enough to amortize dispatch
// and small enough to keep a batch of rows cache resident.
const DefaultBatchSize = 1024

// Iterator is the batch-at-a-time (vectorized Volcano) operator interface.
// Usage: Open, repeated Next until it returns an empty batch, Close.
//
// Batch ownership contract: the returned slice is valid only until the
// following Next or Close call on the same iterator — operators OWN their
// output buffers and reuse them. Consumers must not retain the batch
// slice across calls; tuples they want to keep must be copied out of the
// batch, and the tuple structs copy safely (their Vals slices and the
// value slabs behind them are immutable once handed out and never
// recycled). Operator-internal scratch (expression environments, key
// buffers, arenas) likewise lives on the operator and is reused across
// rows. BatchSize is a target, not a hard cap: operators may return
// shorter batches at any time and may overshoot by a bounded amount when
// one input row expands to several output rows.
type Iterator interface {
	// Schema describes the output tuples' nontemporal attributes.
	Schema() schema.Schema
	// Open prepares the iterator (and its children) for iteration.
	Open() error
	// Next produces the next batch of tuples; an empty batch signals
	// exhaustion. Next must not be called again after it reported an empty
	// batch or an error.
	Next() ([]tuple.Tuple, error)
	// Close releases resources; it is idempotent.
	Close() error
}

// BatchSizer is implemented by every operator whose output batch size can
// be configured; the plan layer uses it to plumb Flags.BatchSize down.
type BatchSizer interface {
	SetBatchSize(n int)
}

// batching is embedded by operators: it carries the configurable batch
// size and the reusable output buffer.
type batching struct {
	// BatchSize caps (approximately) the tuples per output batch;
	// 0 means DefaultBatchSize.
	BatchSize int

	outBuf []tuple.Tuple
}

// SetBatchSize implements BatchSizer.
func (b *batching) SetBatchSize(n int) { b.BatchSize = n }

// batchCap returns the effective batch size target.
func (b *batching) batchCap() int {
	if b.BatchSize > 0 {
		return b.BatchSize
	}
	return DefaultBatchSize
}

// resetOut clears the output buffer, pre-sizing it on first use.
func (b *batching) resetOut() {
	if b.outBuf == nil {
		b.outBuf = make([]tuple.Tuple, 0, b.batchCap())
	}
	b.outBuf = b.outBuf[:0]
}

// cursor adapts a child's batch stream to per-tuple pulls for the stateful
// operators (merge join, plane sweep) whose logic is inherently
// tuple-at-a-time. The per-tuple call is a concrete, inlineable method, so
// the virtual Next dispatch is still paid once per batch.
type cursor struct {
	it    Iterator
	batch []tuple.Tuple
	pos   int
}

func (c *cursor) init(it Iterator) {
	c.it = it
	c.batch = nil
	c.pos = 0
}

func (c *cursor) next() (tuple.Tuple, bool, error) {
	for c.pos >= len(c.batch) {
		b, err := c.it.Next()
		if err != nil {
			return tuple.Tuple{}, false, err
		}
		if len(b) == 0 {
			return tuple.Tuple{}, false, nil
		}
		c.batch, c.pos = b, 0
	}
	t := c.batch[c.pos]
	c.pos++
	return t, true, nil
}

// drainAppend appends every remaining tuple of it (already opened) to dst.
func drainAppend(dst []tuple.Tuple, it Iterator) ([]tuple.Tuple, error) {
	for {
		b, err := it.Next()
		if err != nil {
			return dst, err
		}
		if len(b) == 0 {
			return dst, nil
		}
		dst = append(dst, b...)
	}
}

// Collect drains it into a materialized relation, handling Open/Close.
func Collect(it Iterator) (*relation.Relation, error) {
	out := relation.New(it.Schema())
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	tuples, err := drainAppend(out.Tuples, it)
	if err != nil {
		return nil, err
	}
	out.Tuples = tuples
	return out, nil
}

// Scan iterates over a materialized relation, handing out zero-copy
// sub-slices of the backing tuple slice as batches.
type Scan struct {
	batching
	Rel *relation.Relation
	pos int
}

// NewScan returns a scan over rel.
func NewScan(rel *relation.Relation) *Scan { return &Scan{Rel: rel} }

func (s *Scan) Schema() schema.Schema { return s.Rel.Schema }

func (s *Scan) Open() error {
	s.pos = 0
	return nil
}

func (s *Scan) Next() ([]tuple.Tuple, error) {
	if s.pos >= len(s.Rel.Tuples) {
		return nil, nil
	}
	end := s.pos + s.batchCap()
	if end > len(s.Rel.Tuples) {
		end = len(s.Rel.Tuples)
	}
	b := s.Rel.Tuples[s.pos:end:end]
	s.pos = end
	return b, nil
}

func (s *Scan) Close() error { return nil }
