// ColLimit: vectorized LIMIT/OFFSET. Counting is over *selected* rows —
// the logical row count NumRows — never the physical batch length, so an
// upstream filter's selection vector can't make OFFSET skip rows that
// were already filtered out (or too few of the surviving ones).
package exec

import (
	"talign/internal/colbatch"
	"talign/internal/schema"
)

// ColLimit passes through at most N selected rows after skipping the
// first Offset selected rows. N < 0 means no limit. Once the quota is
// reached the child is never pulled again (early exit).
type ColLimit struct {
	Input  ColIterator
	N      int64
	Offset int64

	toSkip    int64
	remaining int64
	done      bool
	iota      []int32
	selBuf    []int32
}

// NewColLimit returns a columnar limit operator.
func NewColLimit(in ColIterator, n, offset int64) *ColLimit {
	return &ColLimit{Input: in, N: n, Offset: offset}
}

// Schema implements ColIterator.
func (l *ColLimit) Schema() schema.Schema { return l.Input.Schema() }

// Open implements ColIterator.
func (l *ColLimit) Open() error {
	l.toSkip = l.Offset
	l.remaining = l.N
	l.done = false
	return l.Input.Open()
}

// NextCol implements ColIterator.
func (l *ColLimit) NextCol() (*colbatch.Batch, error) {
	if l.done || l.remaining == 0 {
		l.done = true
		return nil, nil
	}
	for {
		b, err := l.Input.NextCol()
		if err != nil {
			return nil, err
		}
		if b == nil {
			l.done = true
			return nil, nil
		}
		cnt := int64(b.NumRows())
		if cnt == 0 {
			continue
		}
		if l.toSkip >= cnt {
			l.toSkip -= cnt
			continue
		}
		if l.toSkip > 0 || (l.remaining >= 0 && cnt-l.toSkip > l.remaining) {
			sel := b.Sel
			if sel == nil {
				// Materialize the identity selection so we can trim it.
				l.iota = l.iota[:0]
				for i := 0; i < b.Len(); i++ {
					l.iota = append(l.iota, int32(i))
				}
				sel = l.iota
			}
			sel = sel[l.toSkip:]
			l.toSkip = 0
			if l.remaining >= 0 && int64(len(sel)) > l.remaining {
				sel = sel[:l.remaining]
			}
			// Copy into our own buffer: the child owns its Sel storage
			// and may reuse it, but it must see our trim on b.
			l.selBuf = append(l.selBuf[:0], sel...)
			b.Sel = l.selBuf
		}
		if l.remaining >= 0 {
			l.remaining -= int64(b.NumRows())
		}
		return b, nil
	}
}

// Close implements ColIterator.
func (l *ColLimit) Close() error { return l.Input.Close() }
