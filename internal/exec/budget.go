package exec

import (
	"fmt"
	"sync/atomic"

	"talign/internal/tuple"
)

// budgetAborts counts, process-wide, how many executions a resource
// budget has aborted; the server's /metrics endpoint exposes it next to
// the cancellation counter.
var budgetAborts atomic.Uint64

// BudgetAborts reports how many budget aborts have happened process-wide
// since start.
func BudgetAborts() uint64 { return budgetAborts.Load() }

// Budget is one query's cooperative resource budget: a cap on the total
// tuples and (approximate) bytes that may cross operator boundaries
// during the execution. Every guarded operator charges its output batch,
// so the counters measure the work and transient memory of the whole
// tree — intermediate blow-ups (a runaway group construction, a cross
// product feeding a sort) trip the budget long before the final result
// would. Charging happens at batch granularity through shared atomic
// counters, so one Budget serves every fragment of a parallel plan.
//
// A nil *Budget, or a Budget with zero limits, never aborts anything.
type Budget struct {
	// MaxRows caps the cumulative tuples crossing operator boundaries
	// (0 = unlimited).
	MaxRows int64
	// MaxBytes caps the cumulative approximate batch bytes crossing
	// operator boundaries (0 = unlimited).
	MaxBytes int64

	rows    atomic.Int64
	bytes   atomic.Int64
	tripped atomic.Bool
}

// NewBudget returns a budget with the given limits; both zero means a
// budget that never trips (callers usually pass nil instead).
func NewBudget(maxRows, maxBytes int64) *Budget {
	return &Budget{MaxRows: maxRows, MaxBytes: maxBytes}
}

// Rows reports the tuples charged so far.
func (b *Budget) Rows() int64 { return b.rows.Load() }

// Bytes reports the approximate bytes charged so far.
func (b *Budget) Bytes() int64 { return b.bytes.Load() }

// charge accounts one batch and reports the structured abort error once
// a limit is exceeded. Only the first trip is counted into the
// process-wide instrumentation (every guarded operator of the tree will
// observe the same exhausted budget as it unwinds).
func (b *Budget) charge(batch []tuple.Tuple) error {
	if b == nil || len(batch) == 0 {
		return nil
	}
	rows := b.rows.Add(int64(len(batch)))
	bytes := b.bytes.Add(approxBatchBytes(batch))
	switch {
	case b.MaxRows > 0 && rows > b.MaxRows:
		return b.trip("rows", rows, b.MaxRows)
	case b.MaxBytes > 0 && bytes > b.MaxBytes:
		return b.trip("bytes", bytes, b.MaxBytes)
	}
	return nil
}

// trip builds the abort error, counting the first one per budget.
func (b *Budget) trip(resource string, used, limit int64) error {
	if b.tripped.CompareAndSwap(false, true) {
		budgetAborts.Add(1)
	}
	return &BudgetError{Resource: resource, Used: used, Limit: limit}
}

// approxBatchBytes estimates the wire-ish size of a batch: a fixed
// per-tuple overhead (valid time + header) plus a fixed cost per value.
// The estimate is deliberately cheap — no string walking — because it
// runs per batch on every operator boundary; budgets bound runaway work,
// they are not an allocator.
func approxBatchBytes(batch []tuple.Tuple) int64 {
	vals := 0
	for i := range batch {
		vals += len(batch[i].Vals)
	}
	return int64(len(batch))*24 + int64(vals)*24
}

// BudgetError is the structured resource-abort error: the server maps it
// to the wire code "resource".
type BudgetError struct {
	// Resource names the exhausted limit ("rows" or "bytes").
	Resource string
	// Used and Limit are the charged total and the configured cap.
	Used, Limit int64
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("exec: resource budget exceeded: %s %d > limit %d", e.Resource, e.Used, e.Limit)
}
