package exec

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math/rand"
	"testing"

	"talign/internal/expr"
	"talign/internal/interval"
	"talign/internal/randrel"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
	"talign/internal/value"
)

// TestSplitterExchangeRoundTrip: splitting a stream into DOP partitions and
// merging them back must be a permutation of the input, for several DOPs
// and batch sizes, keyed and whole-tuple partitioning alike.
func TestSplitterExchangeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := randrel.DefaultConfig(schema.Attr{Name: "x", Type: value.KindString}, schema.Attr{Name: "v", Type: value.KindInt})
	cfg.MaxTuples = 200
	cfg.TimeMax = 64
	cfg.Alphabet = 6
	rel := randrel.Generate(rng, cfg)
	keyVariants := [][]expr.Expr{
		nil, // whole tuple
		{expr.ColIdx{Idx: 0, Typ: value.KindString}},
	}
	for _, keys := range keyVariants {
		for _, dop := range []int{1, 2, 3, 7} {
			for _, batch := range []int{1, 3, 0} {
				name := fmt.Sprintf("keys=%v/dop=%d/batch=%d", keys != nil, dop, batch)
				sp, err := NewSplitter(NewScan(rel), keys, dop, maphash.MakeSeed())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if batch > 0 {
					sp.SetBatchSize(batch)
				}
				frags := make([]Iterator, dop)
				for i := range frags {
					frags[i] = sp.Partition(i)
				}
				ex, err := NewExchange(frags)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got, err := Collect(ex)
				if err != nil {
					t.Fatalf("%s: collect: %v", name, err)
				}
				if !relation.SetEqual(rel, got) {
					a, b := relation.Diff(rel, got)
					t.Fatalf("%s: round trip lost tuples\nonly in: %v\nonly out: %v", name, a, b)
				}
				if got.Len() != rel.Len() {
					t.Fatalf("%s: %d tuples in, %d out", name, rel.Len(), got.Len())
				}
			}
		}
	}
}

// TestSplitterCoPartition: two splitters sharing a seed must route equal
// keys to the same partition index.
func TestSplitterCoPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := randrel.DefaultConfig(schema.Attr{Name: "x", Type: value.KindString}, schema.Attr{Name: "v", Type: value.KindInt})
	cfg.MaxTuples = 60
	a := randrel.Generate(rng, cfg)
	b := randrel.Generate(rng, cfg)
	const dop = 4
	seed := maphash.MakeSeed()
	key := []expr.Expr{expr.ColIdx{Idx: 0, Typ: value.KindString}}
	drain := func(rel *relation.Relation) [dop]map[string]bool {
		sp, err := NewSplitter(NewScan(rel), key, dop, seed)
		if err != nil {
			t.Fatal(err)
		}
		frags := make([]Iterator, dop)
		for i := range frags {
			frags[i] = sp.Partition(i)
		}
		var out [dop]map[string]bool
		done := make(chan error, dop)
		for i := range frags {
			out[i] = map[string]bool{}
			go func(i int) {
				if err := frags[i].Open(); err != nil {
					done <- err
					return
				}
				defer frags[i].Close()
				for {
					batch, err := frags[i].Next()
					if err != nil {
						done <- err
						return
					}
					if len(batch) == 0 {
						done <- nil
						return
					}
					for _, tu := range batch {
						out[i][tu.Vals[0].String()] = true
					}
				}
			}(i)
		}
		for i := 0; i < dop; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	pa, pb := drain(a), drain(b)
	for i := 0; i < dop; i++ {
		for k := range pa[i] {
			for j := 0; j < dop; j++ {
				if j != i && pb[j][k] {
					t.Fatalf("key %q lands in partition %d of a but %d of b", k, i, j)
				}
			}
		}
	}
}

// errIter fails after emitting a few batches.
type errIter struct {
	n int
}

func (e *errIter) Schema() schema.Schema { return schema.Schema{} }
func (e *errIter) Open() error           { return nil }
func (e *errIter) Next() ([]tuple.Tuple, error) {
	e.n++
	if e.n > 2 {
		return nil, errors.New("boom")
	}
	return []tuple.Tuple{{}}, nil
}
func (e *errIter) Close() error { return nil }

// TestExchangeErrorPropagation: a failing fragment surfaces its error at
// the merge side and cancels the siblings without deadlocking.
func TestExchangeErrorPropagation(t *testing.T) {
	rel := relation.New(schema.Schema{})
	for i := 0; i < 100; i++ {
		rel.Tuples = append(rel.Tuples, tuple.Tuple{})
	}
	ex, err := NewExchange([]Iterator{&errIter{}, NewScan(rel)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for {
		b, err := ex.Next()
		if err != nil {
			sawErr = err
			break
		}
		if len(b) == 0 {
			break
		}
	}
	ex.Close()
	if sawErr == nil || sawErr.Error() != "boom" {
		t.Fatalf("want boom error, got %v", sawErr)
	}
}

// TestExchangeEarlyClose: abandoning an exchange mid-stream must unblock
// the splitter producer and the workers (the test would hang otherwise).
func TestExchangeEarlyClose(t *testing.T) {
	rel := relation.New(schema.Schema{Attrs: []schema.Attr{{Name: "v", Type: value.KindInt}}})
	for i := 0; i < 50_000; i++ {
		rel.MustAppend(tuple.New(interval.New(int64(i), int64(i)+1), value.NewInt(int64(i%97))))
	}
	sp, err := NewSplitter(NewScan(rel), nil, 3, maphash.MakeSeed())
	if err != nil {
		t.Fatal(err)
	}
	sp.SetBatchSize(16)
	frags := make([]Iterator, 3)
	for i := range frags {
		frags[i] = sp.Partition(i)
	}
	ex, err := NewExchange(frags)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
}

// closeTracker records whether Close was called.
type closeTracker struct {
	Iterator
	closed bool
}

func (c *closeTracker) Close() error {
	c.closed = true
	return c.Iterator.Close()
}

// TestSplitterAbandonedBeforeOpen: closing every partition of a splitter
// whose producer never launched (the plan-build error path) must close the
// source iterator and let the drain goroutines exit instead of leaking.
func TestSplitterAbandonedBeforeOpen(t *testing.T) {
	rel := relation.New(schema.Schema{Attrs: []schema.Attr{{Name: "v", Type: value.KindInt}}})
	rel.MustAppend(tuple.New(interval.New(0, 1), value.NewInt(1)))
	src := &closeTracker{Iterator: NewScan(rel)}
	sp, err := NewSplitter(src, nil, 3, maphash.MakeSeed())
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]Iterator, 3)
	for i := range parts {
		parts[i] = sp.Partition(i)
	}
	// Never Open any partition — simulate ExchangeNode.Build failing after
	// splitter construction — then close them all.
	for _, p := range parts {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !src.closed {
		t.Fatal("source iterator not closed after all partitions released")
	}
	// The channels must be closed so the drain goroutines exit and a
	// stray Next reports exhaustion rather than blocking.
	if b, err := parts[0].Next(); err != nil || len(b) != 0 {
		t.Fatalf("abandoned partition Next = (%v, %v), want empty", b, err)
	}
}
