package exec

import (
	"sync/atomic"

	"talign/internal/schema"
	"talign/internal/tuple"
)

// Count is a transparent iterator wrapper that adds every batch's tuple
// count to a shared atomic counter. EXPLAIN ANALYZE wraps each operator a
// plan builds with one, so the rendered tree can contrast estimated and
// actual cardinalities; the counter is atomic because exchange fragments
// drive their operators from worker goroutines.
type Count struct {
	// Input is the wrapped operator.
	Input Iterator
	// N accumulates the tuples Input produced.
	N *atomic.Int64
}

// CountTo wraps in so that every produced tuple is counted into n.
func CountTo(in Iterator, n *atomic.Int64) *Count {
	return &Count{Input: in, N: n}
}

func (c *Count) Schema() schema.Schema { return c.Input.Schema() }
func (c *Count) Open() error           { return c.Input.Open() }
func (c *Count) Close() error          { return c.Input.Close() }

func (c *Count) Next() ([]tuple.Tuple, error) {
	b, err := c.Input.Next()
	if err != nil {
		return nil, err
	}
	c.N.Add(int64(len(b)))
	return b, nil
}
