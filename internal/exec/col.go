// Columnar side of the executor. ColIterator is the vectorized twin of
// Iterator: it streams colbatch.Batch values — flat typed vectors plus a
// selection vector — instead of []tuple.Tuple. The two sides are bridged
// by exactly two shims: Materialize (columnar → rows, the single
// conversion at the API boundary) and ToCol (rows → columnar, so
// operators can be migrated incrementally). The plan layer decides per
// operator chain which side runs; see plan's BuildCol protocol.
//
// # Batch ownership
//
// The contract mirrors the row side, with one addition. A batch returned
// by NextCol is owned by the producer and valid only until the next
// NextCol or Close call. Consumers MAY mutate the returned batch in
// place — in particular they may install or refine its selection vector
// (that is how Filter and Limit work) — because the producer rewrites
// every field it cares about on the next call. Consumers must NOT retain
// the batch or its column storage across calls; to keep data, copy it
// out (AppendBatch) or materialize rows.
//
// Exhaustion is signalled by a nil batch. A non-nil batch with an empty
// selection is valid and does NOT signal exhaustion; drivers keep
// pulling. After NextCol returns nil or an error, behaviour of further
// NextCol calls is undefined.
package exec

import (
	"talign/internal/colbatch"
	"talign/internal/relation"
	"talign/internal/schema"
	"talign/internal/tuple"
)

// ColIterator is the vectorized iterator interface.
type ColIterator interface {
	// Schema describes the nontemporal attributes of the batches.
	Schema() schema.Schema
	// Open prepares the iterator; it must be called exactly once.
	Open() error
	// NextCol returns the next batch, or nil when exhausted. See the
	// package comment for the ownership contract.
	NextCol() (*colbatch.Batch, error)
	// Close releases resources; it must be called exactly once.
	Close() error
}

// ColScan streams a relation's cached columnar image as zero-copy views.
type ColScan struct {
	batching
	Rel *relation.Relation

	img  *colbatch.Batch
	pos  int
	view colbatch.Batch
}

// NewColScan returns a columnar scan over rel.
func NewColScan(rel *relation.Relation) *ColScan { return &ColScan{Rel: rel} }

// Schema implements ColIterator.
func (s *ColScan) Schema() schema.Schema { return s.Rel.Schema }

// Open implements ColIterator; it acquires (and on first use builds) the
// relation's columnar image.
func (s *ColScan) Open() error {
	s.img = s.Rel.Columnar()
	s.pos = 0
	return nil
}

// NextCol implements ColIterator: each batch is a view of the shared
// image — no copying. Consumers may set the view's Sel; the view header
// is rewritten on every call.
func (s *ColScan) NextCol() (*colbatch.Batch, error) {
	if s.pos >= s.img.Len() {
		return nil, nil
	}
	end := s.pos + s.batchCap()
	if end > s.img.Len() {
		end = s.img.Len()
	}
	s.img.SliceInto(&s.view, s.pos, end)
	s.pos = end
	return &s.view, nil
}

// Close implements ColIterator.
func (s *ColScan) Close() error {
	s.img = nil
	return nil
}

// Materialize adapts a columnar chain to the row Iterator interface: the
// single columnar→row conversion step at the boundary. Each Next call
// materializes the selected rows of one (or more, if selections come
// back empty) columnar batches into fresh tuples.
type Materialize struct {
	Input ColIterator
	out   []tuple.Tuple
}

// NewMaterialize wraps a columnar iterator as a row iterator.
func NewMaterialize(in ColIterator) *Materialize { return &Materialize{Input: in} }

// Schema implements Iterator.
func (m *Materialize) Schema() schema.Schema { return m.Input.Schema() }

// Open implements Iterator.
func (m *Materialize) Open() error { return m.Input.Open() }

// Next implements Iterator. The returned tuples follow the row-side
// contract: the slice is reused, the tuples' value slabs are fresh per
// call and safe to retain.
func (m *Materialize) Next() ([]tuple.Tuple, error) {
	m.out = m.out[:0]
	for {
		b, err := m.Input.NextCol()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if b.NumRows() == 0 {
			continue // fully filtered batch; keep pulling
		}
		return b.Materialize(m.out), nil
	}
}

// Close implements Iterator.
func (m *Materialize) Close() error { return m.Input.Close() }

// ToCol adapts a row iterator to the columnar interface — the shim that
// lets a columnar operator consume a not-yet-migrated child. Each batch
// is converted by value into a reused columnar buffer.
type ToCol struct {
	Input Iterator
	out   *colbatch.Batch
}

// NewToCol wraps a row iterator as a columnar iterator.
func NewToCol(in Iterator) *ToCol { return &ToCol{Input: in} }

// Schema implements ColIterator.
func (c *ToCol) Schema() schema.Schema { return c.Input.Schema() }

// Open implements ColIterator.
func (c *ToCol) Open() error { return c.Input.Open() }

// NextCol implements ColIterator.
func (c *ToCol) NextCol() (*colbatch.Batch, error) {
	rows, err := c.Input.Next()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	c.out = colbatch.FromTuples(c.out, c.Input.Schema(), rows)
	return c.out, nil
}

// Close implements ColIterator.
func (c *ToCol) Close() error { return c.Input.Close() }

// ApplyColBatch sets the batch size on a columnar operator when it is
// configurable, mirroring the row side's BatchSizer plumbing.
func ApplyColBatch(it ColIterator, n int) ColIterator {
	if n > 0 {
		if bs, ok := it.(BatchSizer); ok {
			bs.SetBatchSize(n)
		}
	}
	return it
}
