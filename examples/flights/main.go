// The flights example schedules crews against flight validity periods:
// a temporal full outer join pairs crew certifications with scheduled
// routes (who can fly what, when; which routes lack certified crews), a
// temporal antijoin finds certification gaps, and a temporal intersection
// computes when both a crew and a route are simultaneously active — the
// outer-join/antijoin workload the paper's Sec. 1 motivates.
package main

import (
	"fmt"

	"talign/internal/core"
	"talign/internal/expr"
	"talign/internal/relation"
	"talign/internal/value"
)

func main() {
	// Crew certifications: crew member, aircraft type, valid period (days).
	certs := relation.NewBuilder("crew string", "ac string").
		Row(0, 120, "amy", "a320").
		Row(60, 240, "amy", "b737").
		Row(0, 365, "bob", "b737").
		Row(100, 200, "cal", "a320").
		MustBuild()
	// Scheduled routes: route, aircraft type, operating period.
	routes := relation.NewBuilder("route string", "ac2 string").
		Row(30, 150, "VIE-ARN", "a320").
		Row(90, 300, "BZO-ZRH", "b737").
		Row(310, 350, "SCL-AZS", "a320").
		MustBuild()

	algebra := core.Default()
	sameType := expr.Eq(expr.C("ac"), expr.C("ac2"))

	// Who can fly what, and which routes are uncovered (ω on the crew
	// side) or which certifications are idle (ω on the route side)?
	rostering, err := algebra.FullOuterJoin(certs, routes, sameType)
	if err != nil {
		panic(err)
	}
	fmt.Println("Rostering (full outer join, change preserving):")
	fmt.Print(rostering.SortCanonical())

	// Routes with no certified crew at all: temporal antijoin.
	uncovered, err := algebra.AntiJoin(routes, certs, expr.Eq(expr.C("ac2"), expr.C("ac")))
	if err != nil {
		panic(err)
	}
	fmt.Println("\nUncovered route periods (antijoin):")
	fmt.Print(uncovered.SortCanonical())

	// When are both amy and bob simultaneously certified on the same
	// type? Temporal join projected to maximal periods per type.
	amy, err := algebra.Selection(certs, expr.Eq(expr.C("crew"), expr.Str("amy")))
	if err != nil {
		panic(err)
	}
	bob, err := algebra.Selection(certs, expr.Eq(expr.C("crew"), expr.Str("bob")))
	if err != nil {
		panic(err)
	}
	// Self join: both sides share the schema (crew, ac), so the condition
	// uses positional references: left ac is column 1, right ac column 3.
	both, err := algebra.Join(amy, bob, expr.Eq(
		expr.CI(1, value.KindString), expr.CI(3, value.KindString)))
	if err != nil {
		panic(err)
	}
	fmt.Println("\nAmy and Bob certified together (join):")
	fmt.Print(both.SortCanonical())

	// Certification coverage per aircraft type over time: projection of
	// the certs relation to the type attribute (πT with change
	// preservation keeps one piece per change in the certified set).
	coverage, err := algebra.Projection(certs, "ac")
	if err != nil {
		panic(err)
	}
	fmt.Println("\nCertified type coverage over time (πT):")
	fmt.Print(coverage.SortCanonical())
}
