// Command sqlclient is the stock database/sql walkthrough: a Go program
// whose ONLY talign dependency is the blank-imported driver
// registration. It opens a DSN (embedded "talign://demo" by default, or
// a "talignd://host:port" remote passed as the first argument), prepares
// a placeholder ALIGN query, executes it twice with different bindings,
// and iterates the incrementally streamed rows with plain rows.Next /
// rows.Scan — exactly what any existing database/sql codebase would do.
//
//	go run ./examples/sqlclient                      # embedded demo
//	go run ./examples/sqlclient talignd://localhost:7411
package main

import (
	"context"
	"database/sql"
	"fmt"
	"log"
	"os"

	_ "talign/sqldriver"
)

// The paper's running example: reservations r(n) aligned to price
// categories p(a, mn, mx) wherever the reservation's ORIGINAL duration
// (Us, Ue propagate it) falls in the category's duration band and the
// price is at least $1.
const alignSQL = `WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
SELECT n, Us, Ue FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx AND a >= $1) x
ORDER BY n, Us, Ts`

func main() {
	dsn := "talign://demo"
	if len(os.Args) > 1 {
		dsn = os.Args[1]
	}
	db, err := sql.Open("talign", dsn)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	stmt, err := db.PrepareContext(ctx, alignSQL)
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()

	for _, minPrice := range []int64{0, 40} {
		fmt.Printf("-- aligned reservations with price >= %d (%s)\n", minPrice, dsn)
		rows, err := stmt.QueryContext(ctx, minPrice)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for rows.Next() {
			var name string
			var us, ue, ts, te int64
			if err := rows.Scan(&name, &us, &ue, &ts, &te); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-4s reserved [%2d,%2d)  aligned piece [%2d,%2d)\n", name, us, ue, ts, te)
			n++
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		rows.Close()
		fmt.Printf("(%d rows)\n", n)
	}
}
