// The hr example runs Incumben-style workforce analytics on a synthetic
// job-assignment history: temporal aggregation (headcount over time),
// temporal normalization per employee, temporal difference (who holds a
// position outside their probation window), and a temporal join matching
// concurrent assignments — the workload family that motivates the paper's
// evaluation (Sec. 7).
package main

import (
	"fmt"

	"talign/internal/core"
	"talign/internal/dataset"
	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/relation"
)

func main() {
	// A small, reproducible slice of the synthetic Incumben dataset.
	jobs := dataset.Incumben(dataset.IncumbenConfig{Rows: 300, Seed: 7})
	fmt.Printf("job assignments: %d tuples over %s\n", jobs.Len(), spanOf(jobs))

	algebra := core.Default()

	// Headcount over time: COUNT(*) per snapshot, change preserved. The
	// output has one tuple per maximal period with a constant set of
	// active assignments.
	headcount, err := algebra.Aggregation(jobs, nil, []exec.AggSpec{
		{Func: exec.AggCountStar, Name: "active"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("headcount series: %d periods\n", headcount.Len())
	peak := int64(0)
	for _, t := range headcount.Tuples {
		if v := t.Vals[0].Int(); v > peak {
			peak = v
		}
	}
	fmt.Printf("peak concurrent assignments: %d\n", peak)

	// Employees with overlapping assignments (moonlighting): temporal self
	// join on ssn with different positions.
	left := rename(jobs, "ssn", "pcn")
	right := rename(jobs, "ssn2", "pcn2")
	moon, err := algebra.Join(left, right, expr.And(
		expr.Eq(expr.C("ssn"), expr.C("ssn2")),
		expr.Lt(expr.C("pcn"), expr.C("pcn2")), // avoid symmetric duplicates
	))
	if err != nil {
		panic(err)
	}
	fmt.Printf("overlapping assignment pairs: %d\n", moon.Len())

	// Normalization per employee: split each assignment at the start/end
	// of the same employee's other assignments (the paper's N_{ssn}).
	norm, err := algebra.Normalize(jobs, jobs, "ssn")
	if err != nil {
		panic(err)
	}
	fmt.Printf("N_ssn pieces: %d (from %d tuples)\n", norm.Len(), jobs.Len())

	// Temporal difference: periods where position 0..9 is assigned to
	// somebody but NOT covered by employee 0's assignments.
	lowPos, err := algebra.Selection(jobs, expr.Lt(expr.C("pcn"), expr.Int(10)))
	if err != nil {
		panic(err)
	}
	mine, err := algebra.Selection(jobs, expr.Eq(expr.C("ssn"), expr.Int(0)))
	if err != nil {
		panic(err)
	}
	uncovered, err := algebra.AntiJoin(lowPos, mine, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("low-position periods outside employee 0's assignments: %d\n", uncovered.Len())
}

func rename(rel *relation.Relation, names ...string) *relation.Relation {
	out := rel.Clone()
	for i := range out.Schema.Attrs {
		out.Schema.Attrs[i].Name = names[i]
	}
	return out
}

func spanOf(rel *relation.Relation) string {
	iv, ok := rel.Span()
	if !ok {
		return "[-)"
	}
	return iv.String()
}
