// The quickstart example replays the paper's running hotel scenario
// (Example 1, Fig. 1): reservations R, price categories P, the temporal
// left outer join Q1 with a predicate over the reservations' original
// timestamps (extended snapshot reducibility), the temporal aggregation
// Q2, and a prepared statement with a $1 placeholder. It shows the
// algebra API, the SQL dialect and the staged Prepare/Execute pipeline.
// The whole walkthrough also runs as an Example test (example_test.go),
// so `go test ./examples/quickstart` keeps this document honest.
package main

import (
	"fmt"

	"talign/internal/core"
	"talign/internal/exec"
	"talign/internal/expr"
	"talign/internal/plan"
	"talign/internal/relation"
	"talign/internal/sqlish"
	"talign/internal/value"
)

func main() { run() }

// run executes the walkthrough, printing each step.
func run() {
	// Months since 2012/1: [0, 7) is [2012/1, 2012/8).
	reservations := relation.NewBuilder("n string").
		Row(0, 7, "Ann").
		Row(1, 5, "Joe").
		Row(7, 11, "Ann").
		MustBuild()
	prices := relation.NewBuilder("a int", "mn int", "mx int").
		Row(0, 5, 50, 1, 2).   // short term, winter
		Row(0, 5, 40, 3, 7).   // long term, winter
		Row(0, 12, 30, 8, 12). // permanent
		Row(9, 12, 50, 1, 2).  // short term, next winter
		Row(9, 12, 40, 3, 7).  // long term, next winter
		MustBuild()

	fmt.Println("Reservations R:")
	fmt.Print(reservations)
	fmt.Println("\nPrices P:")
	fmt.Print(prices)

	algebra := core.Default()

	// Q1 = R ⟕T_{Min ≤ DUR(R.T) ≤ Max} P. The predicate references R's
	// original valid time, so we first propagate it (extend operator).
	extended := core.MustExtend(reservations, "u")
	theta := expr.Between{X: expr.Dur(expr.C("u")), Lo: expr.C("mn"), Hi: expr.C("mx")}
	q1, err := algebra.LeftOuterJoin(extended, prices, theta)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nQ1 — fixed-price periods and periods to negotiate (ω):")
	fmt.Print(q1.SortCanonical())

	// Q2 = ϑT_AVG(DUR(R.T))(R): average reservation duration at each time.
	q2, err := algebra.Aggregation(extended, nil, []exec.AggSpec{
		{Func: exec.AggAvg, Arg: expr.Dur(expr.C("u")), Name: "avg_duration"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nQ2 — average reservation duration over time:")
	fmt.Print(q2.SortCanonical())

	// The same Q1 through the SQL dialect of Sec. 6, nearly verbatim.
	engine := sqlish.NewEngine(plan.DefaultFlags())
	engine.Register("r", reservations)
	engine.Register("p", prices)
	sqlQ1 := engine.MustQuery(`
		WITH r2 AS (SELECT Ts Us, Te Ue, * FROM r)
		SELECT ABSORB n, a, mn, mx, x.Ts, x.Te
		FROM (r2 ALIGN p ON DUR(Us, Ue) BETWEEN mn AND mx) x
		LEFT OUTER JOIN (p ALIGN r2 ON DUR(Us, Ue) BETWEEN mn AND mx) y
		ON DUR(Us, Ue) BETWEEN y.mn AND y.mx AND x.Ts = y.Ts AND x.Te = y.Te`)
	fmt.Println("\nQ1 via SQL (ALIGN + ABSORB):")
	fmt.Print(sqlQ1.SortCanonical())

	// Prepared statements: $N placeholders are planned once and bound per
	// execution — the path cmd/talignd serves over HTTP.
	cat := sqlish.MapCatalog{}
	cat.Register("p", prices)
	prep, err := sqlish.Prepare("SELECT a, mn, mx FROM p WHERE a >= $1", cat, plan.DefaultFlags())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nPrepared with %d parameter(s); a >= 40:\n", prep.NumParams)
	byPrice, err := prep.Execute(value.NewInt(40))
	if err != nil {
		panic(err)
	}
	fmt.Print(byPrice.SortCanonical())
}
