package main

// Example runs the full quickstart walkthrough and pins its output, so
// `go test ./examples/quickstart` fails whenever the documented behaviour
// drifts — the example IS the test.
func Example() {
	run()
	// Output:
	// Reservations R:
	// (n string) T
	//   (Ann) [0, 7)
	//   (Joe) [1, 5)
	//   (Ann) [7, 11)
	//
	// Prices P:
	// (a int, mn int, mx int) T
	//   (50, 1, 2) [0, 5)
	//   (40, 3, 7) [0, 5)
	//   (30, 8, 12) [0, 12)
	//   (50, 1, 2) [9, 12)
	//   (40, 3, 7) [9, 12)
	//
	// Q1 — fixed-price periods and periods to negotiate (ω):
	// (n string, u period, a int, mn int, mx int) T
	//   (Ann, [0, 7), ω, ω, ω) [5, 7)
	//   (Ann, [0, 7), 40, 3, 7) [0, 5)
	//   (Ann, [7, 11), ω, ω, ω) [7, 9)
	//   (Ann, [7, 11), 40, 3, 7) [9, 11)
	//   (Joe, [1, 5), 40, 3, 7) [1, 5)
	//
	// Q2 — average reservation duration over time:
	// (avg_duration float) T
	//   (4) [7, 11)
	//   (5.5) [1, 5)
	//   (7) [0, 1)
	//   (7) [5, 7)
	//
	// Q1 via SQL (ALIGN + ABSORB):
	// (n string, a int, mn int, mx int) T
	//   (Ann, ω, ω, ω) [5, 7)
	//   (Ann, ω, ω, ω) [7, 9)
	//   (Ann, 40, 3, 7) [0, 5)
	//   (Ann, 40, 3, 7) [9, 11)
	//   (Joe, 40, 3, 7) [1, 5)
	//
	// Prepared with 1 parameter(s); a >= 40:
	// (a int, mn int, mx int) T
	//   (40, 3, 7) [0, 5)
	//   (40, 3, 7) [9, 12)
	//   (50, 1, 2) [0, 5)
	//   (50, 1, 2) [9, 12)
}
